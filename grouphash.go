// Package grouphash is a write-efficient, crash-consistent hash table
// for byte-addressable non-volatile memory, reproducing "A Write-
// efficient and Consistent Hashing Scheme for Non-Volatile Memory"
// (Zhang, Feng, Hua, Chen, Fu — ICPP 2018).
//
// Group hashing commits every insert and delete with a single 8-byte
// failure-atomic store — no logging, no copy-on-write — and resolves
// collisions inside groups of contiguous cells so that collision
// probing stays cacheline-friendly. After a crash, a linear recovery
// scan (Recover) restores full consistency in time proportional to the
// table size (< 1% of the time it took to fill it).
//
// # Quick start
//
//	store, err := grouphash.New(grouphash.Options{Capacity: 1 << 20})
//	if err != nil { ... }
//	store.Put(grouphash.Key{Lo: 42}, 4242)
//	v, ok := store.Get(grouphash.Key{Lo: 42})
//	store.Delete(grouphash.Key{Lo: 42})
//
// A store grows automatically: when Put fills a group the table
// doubles and rehashes behind a single atomic root flip, so Capacity
// is a starting size, not a limit (set DisableExpand to pin it). For
// shared use, set Options.Concurrent — every method becomes safe for
// any number of goroutines, lookups run lock-free on the default
// backend, and a full table triggers a stop-less online expansion
// instead of blocking the world: a background migration drains one
// stripe of groups at a time while the store keeps serving, and a
// writer waits only for its own stripe. On the default backend group
// probes are additionally screened by a DRAM fingerprint sidecar
// (1-byte tags compared eight at a time) before any table cell is
// read.
//
// # Backends
//
// New builds the store over plain process memory. NewSimulated builds
// it over the repository's simulated NVM machine (cache hierarchy,
// latency model, crash injection) — the configuration every paper
// experiment runs on; see the Sim type for crash/recovery tooling and
// the simulated performance counters.
//
// The lower-level building blocks live in internal packages; this
// package is the stable surface.
package grouphash

import (
	"fmt"

	"grouphash/internal/core"
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/native"
	"grouphash/internal/oplog"
	"grouphash/internal/pmfs"
)

// Key is a fixed-size key: 8-byte keys use Lo (and must be non-zero);
// 16-byte keys use Lo and Hi.
type Key = layout.Key

// ErrTableFull is returned when the table cannot place an item and
// auto-expansion is disabled or impossible.
var ErrTableFull = hashtab.ErrTableFull

// ErrInvalidKey is returned for keys the cell layout cannot store
// (the zero key under the 8-byte compact layout).
var ErrInvalidKey = hashtab.ErrInvalidKey

// Options configures a Store.
type Options struct {
	// Capacity is the target item capacity. The table is sized so this
	// many items fit at the paper's ~82% space utilisation; it expands
	// automatically if exceeded (unless DisableExpand).
	Capacity uint64
	// KeyBytes is 8 (compact 16-byte cells) or 16 (32-byte cells).
	// Default 8.
	KeyBytes int
	// GroupSize is the cells-per-group parameter (power of two).
	// Default 256, the paper's choice.
	GroupSize uint64
	// Seed selects the hash function. Default 0.
	Seed uint64
	// DisableExpand makes Put return ErrTableFull instead of growing.
	DisableExpand bool
	// TwoChoice enables the second hash function discussed in §4.4 of
	// the paper: higher space utilisation, lower cache locality. Not
	// compatible with Concurrent.
	TwoChoice bool
	// GroupIndex enables the volatile per-group occupancy index: group
	// scans stop once every occupied cell has been seen, sharply
	// cutting absent-key lookup cost. Derived state only — rebuilt on
	// open and after recovery, no extra persistence traffic.
	GroupIndex bool
	// Concurrent enables the striped-lock wrapper, making all Store
	// methods safe for concurrent use. On the native backend (the
	// default) a full table no longer fails writes: expansion runs
	// online — a background migration drains one stripe of groups at a
	// time while the store keeps serving, and a writer blocks only
	// until its own stripe has moved. Unless DisableExpand is set.
	Concurrent bool
	// Memory overrides the backing memory. Nil means a fresh native
	// (process-memory) backend sized ~3× the cell footprint.
	Memory hashtab.Mem
}

// Store is a group-hash key-value store. Unless Options.Concurrent was
// set it must be confined to one goroutine at a time.
type Store struct {
	tab     *core.Table
	conc    *core.Concurrent
	mem     hashtab.Mem
	expand  bool
	keySize int
}

// New creates a store per opts.
func New(opts Options) (*Store, error) {
	if opts.Capacity == 0 {
		opts.Capacity = 1 << 16
	}
	if opts.KeyBytes == 0 {
		opts.KeyBytes = 8
	}
	// Size level 1 so that Capacity items stay under ~80% utilisation
	// of the two-level structure: total cells ≈ Capacity / 0.8,
	// level 1 = half of that, rounded up to a power of two.
	l1 := uint64(1)
	for l1 < opts.Capacity/2+opts.Capacity/8 {
		l1 <<= 1
	}
	gs := opts.GroupSize
	if gs == 0 {
		gs = core.DefaultGroupSize
	}
	if gs > l1 {
		gs = l1
	}
	mem := opts.Memory
	if mem == nil {
		cell := layout.ForKeySize(opts.KeyBytes).CellSize()
		mem = native.New(l1*2*cell*3 + (1 << 16))
	}
	if opts.Concurrent && opts.TwoChoice {
		return nil, fmt.Errorf("grouphash: Concurrent and TwoChoice are mutually exclusive")
	}
	tab, err := core.Create(mem, core.Options{
		Cells:     l1,
		GroupSize: gs,
		KeyBytes:  opts.KeyBytes,
		Seed:      opts.Seed,
		TwoChoice: opts.TwoChoice,
	})
	if err != nil {
		return nil, err
	}
	if opts.GroupIndex {
		tab.EnableGroupIndex()
	}
	s := &Store{tab: tab, mem: mem, expand: !opts.DisableExpand, keySize: opts.KeyBytes}
	if opts.Concurrent {
		s.conc = core.NewConcurrent(tab, 0)
		s.armOnlineExpand()
	}
	return s, nil
}

// armOnlineExpand enables stop-less expansion on the concurrent wrapper
// when the store wants expansion and the backend can support it (word
// accesses individually atomic — true of the native backend). On other
// backends (the single-clock simulator) the concurrent store keeps the
// old fixed-capacity behaviour.
func (s *Store) armOnlineExpand() {
	if !s.expand || s.conc == nil {
		return
	}
	if _, ok := s.mem.(hashtab.ConcurrentReader); ok {
		s.conc.EnableOnlineExpand()
	} else {
		s.expand = false
	}
}

// Open reconstructs a store from a persistent memory image, given the
// header address returned by Header. Call Recover afterwards if the
// previous shutdown was not clean.
func Open(mem hashtab.Mem, header uint64, concurrent bool) (*Store, error) {
	tab, err := core.Open(mem, header)
	if err != nil {
		return nil, err
	}
	s := &Store{tab: tab, mem: mem, expand: true, keySize: 8}
	if concurrent {
		s.conc = core.NewConcurrent(tab, 0)
		s.armOnlineExpand()
	}
	return s, nil
}

// Header returns the table's persistent root address, the handle Open
// needs after a restart.
func (s *Store) Header() uint64 { return s.tab.Header() }

// Put stores (k, v), replacing any existing value for k. The table
// expands automatically when full (unless disabled). On a concurrent
// store the update-or-insert pair runs as one atomic operation under
// the group lock, so racing Puts of the same key can never commit
// duplicate items; a full table triggers a stop-less online expansion
// instead of failing — the write blocks only until the migration has
// drained its own stripe, then retries against the doubled arrays.
func (s *Store) Put(k Key, v uint64) error {
	if s.conc != nil {
		return s.conc.Upsert(k, v)
	}
	if s.tab.Update(k, v) {
		return nil
	}
	err := s.tab.Insert(k, v)
	if err == hashtab.ErrTableFull && s.expand {
		if err = s.tab.Expand(); err != nil {
			return err
		}
		err = s.tab.Insert(k, v)
	}
	return err
}

// Insert stores (k, v) with the paper's Algorithm-1 semantics: no
// existing-key check, duplicates allowed.
func (s *Store) Insert(k Key, v uint64) error {
	if s.conc != nil {
		return s.conc.Insert(k, v)
	}
	return s.tab.Insert(k, v)
}

// Item is a key-value pair for batch operations.
type Item = core.Item

// Batch types, re-exported from core. See Store.ApplyBatch.
type (
	// BatchKind selects a BatchOp's mutation semantics.
	BatchKind = core.BatchKind
	// BatchOp is one mutation of a batch.
	BatchOp = core.BatchOp
	// BatchResult is one BatchOp's outcome.
	BatchResult = core.BatchResult
	// BatchScratch holds ApplyBatch's reusable working state; the zero
	// value is ready. One per serving goroutine.
	BatchScratch = core.BatchScratch
)

// Batch mutation kinds.
const (
	// BatchPut upserts (Put semantics).
	BatchPut = core.BatchPut
	// BatchInsert inserts with Algorithm-1 semantics, duplicates
	// allowed.
	BatchInsert = core.BatchInsert
	// BatchDelete removes the key if present.
	BatchDelete = core.BatchDelete
)

// InsertBatch inserts items with one persistent count update for the
// whole batch — roughly one persist barrier in three saved per insert.
// Crash consistency is unchanged (recovery recomputes the count). On a
// sequential store this is core.Table.InsertBatch (items place in
// order; the first failure stops the batch). On a concurrent store it
// runs through ApplyBatch's stripe-grouped runs: one lock acquisition
// and one count persist per stripe-run, items grouped by stripe rather
// than placed in strict submission order, and a full table waits for
// online expansion instead of failing. Either way the return is the
// number of items placed plus the first error in submission order.
func (s *Store) InsertBatch(items []Item) (int, error) {
	if s.conc == nil {
		return s.tab.InsertBatch(items)
	}
	ops := make([]BatchOp, len(items))
	out := make([]BatchResult, len(items))
	for i, it := range items {
		ops[i] = BatchOp{Kind: BatchInsert, Key: it.Key, Value: it.Value}
	}
	s.conc.ApplyBatch(ops, out, nil, nil)
	placed := 0
	var err error
	for i := range out {
		if out[i].Err == nil {
			placed++
		} else if err == nil {
			err = out[i].Err
		}
	}
	return placed, err
}

// ApplyBatch applies a burst of mutations as stripe-grouped runs with
// one lock acquisition, one persistent count update, and one commit-
// hook call per run — the batch extension of the PutHook/InsertHook/
// DeleteHook contract, and the entry point the network server drives
// for both OpBatch frames and coalesced pipelined bursts. Per-op
// outcomes land in out (len(out) must equal len(ops)); within a stripe
// ops apply in submission order, which is all the ordering same-key
// sequences need. committed (if non-nil) runs inside each run's
// critical section with the indices of the ops that mutated cells, in
// apply order; the slice is scratch, so consume it before returning.
//
// Crash semantics: a crash mid-batch leaves some stripe-runs fully
// committed, at most one committed up to a prefix, and the count word
// stale — the state Algorithm 4's recovery already repairs. Run
// Recover (which recomputes the count from the bitmaps) after a crash,
// as always.
//
// On a sequential store the ops apply in submission order under the
// caller's exclusivity, with one count persist for the whole batch and
// one committed call at the end.
func (s *Store) ApplyBatch(ops []BatchOp, out []BatchResult, sc *BatchScratch, committed func(applied []int)) {
	if s.conc != nil {
		s.conc.ApplyBatch(ops, out, sc, committed)
		return
	}
	s.applyBatchSequential(ops, out, committed)
}

// applyBatchSequential is the non-concurrent fallback: ops in
// submission order, automatic expansion on a full table (mirroring
// Put), one count persist per mutation (the sequential Table funnels
// every mutation through its own setCount; the amortisation here is
// only the single committed call).
func (s *Store) applyBatchSequential(ops []BatchOp, out []BatchResult, committed func(applied []int)) {
	if len(ops) != len(out) {
		panic("grouphash: ApplyBatch len(ops) != len(out)")
	}
	applied := make([]int, 0, len(ops))
	for i := range ops {
		out[i] = BatchResult{}
		op := &ops[i]
		switch op.Kind {
		case BatchPut:
			if s.tab.Update(op.Key, op.Value) {
				out[i].Found = true
				applied = append(applied, i)
				continue
			}
			if err := s.insertExpanding(op.Key, op.Value); err != nil {
				out[i].Err = err
				continue
			}
			applied = append(applied, i)
		case BatchInsert:
			if err := s.insertExpanding(op.Key, op.Value); err != nil {
				out[i].Err = err
				continue
			}
			applied = append(applied, i)
		case BatchDelete:
			if s.tab.Delete(op.Key) {
				out[i].Found = true
				applied = append(applied, i)
			}
		default:
			panic("grouphash: ApplyBatch: unknown BatchKind")
		}
	}
	if len(applied) > 0 && committed != nil {
		committed(applied)
	}
}

// MGet looks up many keys in one call, filling the caller's parallel
// slices: vals[i] holds the value iff found[i] (both must be len(keys);
// panics otherwise). Reads take the same seqlock-validated path as Get
// — no locks, racing writers simply force the odd retry — so MGet is
// the bulk read to pair with ApplyBatch's bulk writes, and allocates
// nothing.
func (s *Store) MGet(keys []Key, vals []uint64, found []bool) {
	if len(keys) != len(vals) || len(keys) != len(found) {
		panic("grouphash: MGet len(keys) != len(vals) or len(found)")
	}
	for i := range keys {
		vals[i], found[i] = s.Get(keys[i])
	}
}

// insertExpanding inserts, expanding once on a full table when
// expansion is enabled — Put's fallback, shared with the batch path.
func (s *Store) insertExpanding(k Key, v uint64) error {
	err := s.tab.Insert(k, v)
	if err == hashtab.ErrTableFull && s.expand {
		if err = s.tab.Expand(); err != nil {
			return err
		}
		err = s.tab.Insert(k, v)
	}
	return err
}

// Get returns the value stored under k.
func (s *Store) Get(k Key) (uint64, bool) {
	if s.conc != nil {
		return s.conc.Lookup(k)
	}
	return s.tab.Lookup(k)
}

// Delete removes k, reporting whether it was present.
func (s *Store) Delete(k Key) bool {
	return s.DeleteHook(k, nil)
}

// PutHook is Put with a commit hook: on success, committed (if
// non-nil) runs after the store mutation commits but before the
// write's critical section is released — on a concurrent store, inside
// the owning stripe's lock. The network server appends the operation
// to its oplog there, which pairs (apply, append) atomically against
// SnapshotWriterAt's all-stripes cut: no writer can be applied-but-
// unlogged or logged-but-unapplied at the moment the snapshot mark is
// read. The hook must not call back into the store and must be brief.
func (s *Store) PutHook(k Key, v uint64, committed func()) error {
	if s.conc != nil {
		return s.conc.UpsertHook(k, v, committed)
	}
	if err := s.Put(k, v); err != nil {
		return err
	}
	// Sequential stores have no internal lock: the caller already owns
	// exclusivity, so after-apply is inside the critical section.
	if committed != nil {
		committed()
	}
	return nil
}

// InsertHook is Insert with a commit hook; see PutHook for the
// contract.
func (s *Store) InsertHook(k Key, v uint64, committed func()) error {
	if s.conc != nil {
		return s.conc.InsertHook(k, v, committed)
	}
	if err := s.tab.Insert(k, v); err != nil {
		return err
	}
	if committed != nil {
		committed()
	}
	return nil
}

// DeleteHook is Delete with a commit hook; see PutHook for the
// contract. The hook runs only when the key existed and was removed.
func (s *Store) DeleteHook(k Key, committed func()) bool {
	if s.conc != nil {
		return s.conc.DeleteHook(k, committed)
	}
	if !s.tab.Delete(k) {
		return false
	}
	if committed != nil {
		committed()
	}
	return true
}

// Len returns the number of stored items.
func (s *Store) Len() uint64 {
	if s.conc != nil {
		return s.conc.Len()
	}
	return s.tab.Len()
}

// Capacity returns the total cell count of the table.
func (s *Store) Capacity() uint64 { return s.tab.Capacity() }

// Name identifies the scheme behind the engine seam.
func (s *Store) Name() string { return "grouphash" }

// LoadFactor returns Len/Capacity, 0 on a zero-capacity table.
func (s *Store) LoadFactor() float64 {
	capacity := s.Capacity()
	if capacity == 0 {
		return 0
	}
	return float64(s.Len()) / float64(capacity)
}

// GroupSize returns the cells-per-group parameter.
func (s *Store) GroupSize() uint64 { return s.tab.GroupSize() }

// Range calls fn for every stored item until fn returns false. Not
// safe to run concurrently with mutations.
func (s *Store) Range(fn func(k Key, v uint64) bool) { s.tab.Range(fn) }

// RecoveryReport summarises what Recover repaired.
type RecoveryReport = hashtab.RecoveryReport

// Recover runs the paper's Algorithm-4 recovery scan: scrub torn
// payloads behind zero bitmaps and recompute the persistent count.
// Call it after reopening a store that may have crashed.
func (s *Store) Recover() (RecoveryReport, error) { return s.tab.Recover() }

// CheckConsistency verifies the table invariants without repairing,
// returning human-readable violations (empty when consistent).
func (s *Store) CheckConsistency() []string { return s.tab.CheckConsistency() }

// FingerprintStats returns the DRAM probe-filter's effectiveness
// counters: hits is the number of table cells that were dereferenced
// because their fingerprint tag matched the probe key, skips the
// number of occupied-range cells the filter screened out without
// touching the table at all. Both stay zero on backends where the
// sidecar is off (the simulated machine, tiny group sizes).
func (s *Store) FingerprintStats() (hits, skips uint64) { return s.tab.FingerprintStats() }

// Concurrent reports whether the store was built with the striped-lock
// wrapper and is safe for concurrent use.
func (s *Store) Concurrent() bool { return s.conc != nil }

// Expanding reports whether a stop-less online expansion is currently
// in flight (always false on sequential stores, whose expansion
// completes within the Put that triggered it).
func (s *Store) Expanding() bool { return s.conc != nil && s.conc.Expanding() }

// Expansions returns the number of completed online expansions on a
// concurrent store (0 on sequential stores).
func (s *Store) Expansions() uint64 {
	if s.conc == nil {
		return 0
	}
	return s.conc.Expansions()
}

// CountPersists returns the number of count-word persist barriers the
// table has issued — the NVM write amplification metric that batching
// amortises (one bumpCount per stripe-run instead of one per op).
func (s *Store) CountPersists() uint64 { return s.tab.CountPersists() }

// Quiesce runs fn while every writer is excluded. On a concurrent
// store it locks all stripes (in a fixed order, so concurrent Quiesce
// calls cannot deadlock); on a sequential store the caller already
// owns exclusivity and fn simply runs. fn must not call the store's
// own operations (it would self-deadlock on the held stripes) — it is
// the hook under which Snapshot copies a consistent memory image while
// the store keeps serving readers on other goroutines' fallback locks.
func (s *Store) Quiesce(fn func()) {
	if s.conc != nil {
		s.conc.Quiesce(fn)
		return
	}
	fn()
}

// imager is the optional memory-backend surface Snapshot needs: a
// consistent byte image of the allocated region plus the allocator
// watermark. The native backend implements it.
type imager interface {
	Image() []byte
	Allocated() uint64
}

// Snapshot atomically persists the store's entire memory image to a
// pmfs image file at path: writers are quiesced, the allocated region
// is copied, and the copy is written crash-safely (temp file + fsync +
// rename + directory fsync). The resulting file reopens with
// LoadSnapshot. Supported for native-backed stores (the default) and
// simulated stores; other Memory implementations return an error.
//
// The pause is O(allocated bytes) for the in-memory copy only — file
// I/O happens after the writers resume.
func (s *Store) Snapshot(path string) error {
	write, err := s.SnapshotWriter(0)
	if err != nil {
		return err
	}
	return write(path)
}

// SnapshotWriter captures a consistent image of the store NOW (under
// an internal quiesce) and returns a function that later writes it to
// an image file, crash-safely, recording oplogMark as the image's
// oplog mark. Callers that need the mark decided INSIDE the quiesce
// (the network server) use SnapshotWriterAt instead.
func (s *Store) SnapshotWriter(oplogMark uint64) (func(path string) error, error) {
	return s.SnapshotWriterAt(func() (uint64, error) { return oplogMark, nil })
}

// SnapshotWriterAt captures a consistent image of the store under an
// internal quiesce, calling cut() with every writer excluded to decide
// the image's oplog mark; it returns a function that later writes the
// image to a file, crash-safely. Because mutations run their oplog
// append inside the write's critical section (PutHook and friends) and
// cut() runs with all of them held, the mark cut() returns covers
// exactly the operations the captured image contains — the invariant
// recovery's "load image, replay LSNs past the mark" depends on. The
// server's cut reads the log's last LSN and rotates the segment there,
// so sealed segments and image agree too. cut must not call back into
// the store; a cut error aborts the capture.
func (s *Store) SnapshotWriterAt(cut func() (uint64, error)) (func(path string) error, error) {
	var img []byte
	var allocated uint64
	var mark uint64
	var cutErr error
	switch m := s.mem.(type) {
	case *memsim.Memory:
		s.Quiesce(func() {
			if mark, cutErr = cut(); cutErr != nil {
				return
			}
			m.CleanShutdown()
			img, allocated = m.Region().Image(), m.Allocated()
		})
	case imager:
		s.Quiesce(func() {
			if mark, cutErr = cut(); cutErr != nil {
				return
			}
			img, allocated = m.Image(), m.Allocated()
		})
	default:
		return nil, fmt.Errorf("grouphash: memory backend %T cannot be snapshotted", s.mem)
	}
	if cutErr != nil {
		return nil, cutErr
	}
	root := s.Header()
	return func(path string) error {
		return pmfs.SaveImage(path, img, allocated, root, mark)
	}, nil
}

// LoadSnapshot rebuilds a store from an image file written by
// Snapshot, over a fresh native memory. Images are only ever written
// from a quiesced table, so no recovery pass is needed; the store is
// immediately serviceable.
func LoadSnapshot(path string, concurrent bool) (*Store, error) {
	s, _, err := LoadSnapshotMark(path, concurrent)
	return s, err
}

// LoadSnapshotMark is LoadSnapshot plus the image's oplog mark: the
// LSN of the last operation-log record the image covers. Recovery
// replays the oplog from just past the mark (Store.ReplayOplog) to
// reconstruct every acked write the image itself missed.
func LoadSnapshotMark(path string, concurrent bool) (*Store, uint64, error) {
	img, allocated, root, mark, err := pmfs.LoadImage(path)
	if err != nil {
		return nil, 0, err
	}
	mem := native.New(uint64(len(img)))
	mem.SetImage(img)
	mem.SetAllocated(allocated)
	s, err := Open(mem, root, concurrent)
	if err != nil {
		return nil, 0, err
	}
	return s, mark, nil
}

// ReplayOplog replays the operation log based at base onto the store:
// every record with an LSN past `after` (typically the oplog mark of
// the image the store was loaded from) is re-applied in log order.
// Replay only reads the log files, so a crash during replay is
// recovered by replaying again from the same image — the store's
// in-memory state is rebuilt from scratch either way, which is what
// makes replay idempotent. It returns the number of operations applied
// and the LSN the log should continue from (pass it to oplog.Open).
func (s *Store) ReplayOplog(base string, after uint64) (applied int, next uint64, err error) {
	next, applied, err = oplog.Scan(base, after, func(r oplog.Record) error {
		switch r.Op {
		case oplog.OpPut:
			return s.Put(r.Key, r.Value)
		case oplog.OpInsert:
			return s.Insert(r.Key, r.Value)
		case oplog.OpDelete:
			s.Delete(r.Key)
			return nil
		default:
			return fmt.Errorf("grouphash: oplog record %d has unknown op %d", r.LSN, r.Op)
		}
	})
	if err != nil {
		return applied, next, fmt.Errorf("grouphash: oplog replay: %w", err)
	}
	if next <= after {
		next = after + 1
	}
	return applied, next, nil
}

// String describes the store.
func (s *Store) String() string {
	mode := "sequential"
	if s.conc != nil {
		mode = "concurrent"
	}
	return fmt.Sprintf("grouphash.Store{items: %d, cells: %d, group: %d, %s}",
		s.Len(), s.Capacity(), s.GroupSize(), mode)
}
