package grouphash

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentPropertyOracle drives a randomised operation stream
// against the concurrent store from several workers — each on a
// disjoint key range with its own map oracle — while a chaos goroutine
// quiesces and reads, and checks the store against the oracles at
// every step. Between phases the store is snapshotted, reloaded, and
// fully re-verified, so the property covers the persistence path too:
//
//   - Get/Put/Insert/Delete agree with a per-key last-writer oracle;
//   - so do the batch entry points: each worker interleaves ApplyBatch
//     bursts (mixed puts/inserts/deletes, per-op outcomes checked
//     against the oracle) and MGet sweeps with its single-op stream,
//     so stripe-grouped apply races single ops, seqlock reads, the
//     chaos quiescer, and forced mid-batch online expansions;
//   - Len equals the union of the oracles after every phase;
//   - a Snapshot → LoadSnapshot round trip preserves exactly the
//     oracle contents (no losses, no resurrections, no extras);
//   - CheckConsistency stays clean after every phase and after every
//     reload — which audits the DRAM fingerprint sidecar cell by cell,
//     so the filter is proven coherent through concurrent churn, forced
//     online expansions, snapshot reload and crash recovery;
//   - a Recover pass on the reloaded store (what a post-crash restart
//     runs) repairs nothing and leaves the store fully verifiable;
//   - all of the above holds while online expansions fire mid-stream
//     (the store starts at a tiny capacity) and under -race.
func TestConcurrentPropertyOracle(t *testing.T) {
	const (
		workers = 4
		phases  = 3
		opsPer  = 1200 // ops per worker per phase ⇒ 14 400 total ≥ 10k
		span    = 1500 // distinct keys per worker: forces expansions at 1<<10
	)
	st, err := New(Options{Capacity: 1 << 10, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	// Worker w owns keys {(w+1)<<32 + n : n < span}; Hi is a fixed
	// function of Lo so the oracle can key on Lo alone.
	key := func(w int, n uint64) Key {
		lo := uint64(w+1)<<32 | n
		return Key{Lo: lo, Hi: lo * 0x9e3779b97f4a7c15}
	}
	oracles := make([]map[uint64]uint64, workers)
	for w := range oracles {
		oracles[w] = make(map[uint64]uint64)
	}

	verify := func(s *Store, phase int) {
		t.Helper()
		var total uint64
		for w, oracle := range oracles {
			total += uint64(len(oracle))
			for n := uint64(0); n < span; n++ {
				k := key(w, n)
				want, present := oracle[k.Lo]
				got, ok := s.Get(k)
				if ok != present || (present && got != want) {
					t.Fatalf("phase %d: Get(w=%d n=%d) = (%d, %v), oracle (%d, %v)",
						phase, w, n, got, ok, want, present)
				}
			}
		}
		if got := s.Len(); got != total {
			t.Fatalf("phase %d: Len = %d, oracles hold %d", phase, got, total)
		}
		// No extra keys beyond the oracles.
		seen := uint64(0)
		s.Range(func(k Key, v uint64) bool {
			seen++
			w := int(k.Lo>>32) - 1
			if w < 0 || w >= workers {
				t.Errorf("phase %d: alien key %x in store", phase, k.Lo)
				return false
			}
			if want, ok := oracles[w][k.Lo]; !ok || want != v {
				t.Errorf("phase %d: store holds (%x, %d), oracle says (%d, %v)",
					phase, k.Lo, v, want, ok)
				return false
			}
			return true
		})
		if seen != total {
			t.Fatalf("phase %d: Range saw %d items, want %d", phase, seen, total)
		}
		// Full invariant audit, including the fingerprint-sidecar-vs-cell
		// check. CheckConsistency needs the table at rest, and Quiesce
		// waits out any still-running online expansion first.
		s.Quiesce(func() {
			if bad := s.CheckConsistency(); len(bad) != 0 {
				t.Fatalf("phase %d: inconsistencies: %v", phase, bad)
			}
		})
	}

	dir := t.TempDir()
	var totalExpansions uint64
	for phase := 0; phase < phases; phase++ {
		stop := make(chan struct{})
		var chaos sync.WaitGroup
		chaos.Add(1)
		go func() {
			// Chaos: quiesce all writers and poke the read-only surface
			// concurrently with the op stream.
			defer chaos.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.Quiesce(func() {})
				_ = st.Len()
				_ = st.LoadFactor()
				_, _ = st.ExpansionProgress()
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(phase*workers + w + 1)))
				oracle := oracles[w]
				var sc BatchScratch
				for i := 0; i < opsPer; i++ {
					n := rng.Uint64() % span
					k := key(w, n)
					switch op := rng.Intn(12); {
					case op < 4: // Put (upsert)
						v := rng.Uint64() >> 1
						if err := st.Put(k, v); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
						oracle[k.Lo] = v
					case op < 6: // Insert where absent, else skip
						if _, dup := oracle[k.Lo]; dup {
							continue
						}
						v := rng.Uint64() >> 1
						if err := st.Insert(k, v); err != nil {
							t.Errorf("Insert: %v", err)
							return
						}
						oracle[k.Lo] = v
					case op < 8: // Delete
						want := false
						if _, ok := oracle[k.Lo]; ok {
							want = true
						}
						if got := st.Delete(k); got != want {
							t.Errorf("Delete(w=%d n=%d) = %v, oracle %v", w, n, got, want)
							return
						}
						delete(oracle, k.Lo)
					case op < 9: // Get
						want, present := oracle[k.Lo]
						got, ok := st.Get(k)
						if ok != present || (present && got != want) {
							t.Errorf("Get(w=%d n=%d) = (%d, %v), oracle (%d, %v)",
								w, n, got, ok, want, present)
							return
						}
					case op < 11: // ApplyBatch burst of mixed mutations
						bn := 1 + rng.Intn(16)
						ops := make([]BatchOp, 0, bn)
						expectFound := make([]bool, 0, bn)
						for j := 0; j < bn; j++ {
							bk := key(w, rng.Uint64()%span)
							_, present := oracle[bk.Lo]
							switch {
							case rng.Intn(3) == 0: // delete
								ops = append(ops, BatchOp{Kind: BatchDelete, Key: bk})
								expectFound = append(expectFound, present)
								delete(oracle, bk.Lo)
							case present: // upsert an existing key in place
								v := rng.Uint64() >> 1
								ops = append(ops, BatchOp{Kind: BatchPut, Key: bk, Value: v})
								expectFound = append(expectFound, true)
								oracle[bk.Lo] = v
							default: // fresh insert
								v := rng.Uint64() >> 1
								ops = append(ops, BatchOp{Kind: BatchInsert, Key: bk, Value: v})
								expectFound = append(expectFound, false)
								oracle[bk.Lo] = v
							}
						}
						out := make([]BatchResult, len(ops))
						st.ApplyBatch(ops, out, &sc, nil)
						for j := range out {
							if out[j].Err != nil {
								t.Errorf("ApplyBatch(w=%d) op %d: %v", w, j, out[j].Err)
								return
							}
							if out[j].Found != expectFound[j] {
								t.Errorf("ApplyBatch(w=%d) op %d Found = %v, oracle %v",
									w, j, out[j].Found, expectFound[j])
								return
							}
						}
					default: // MGet sweep over a random window
						const bn = 8
						keys := make([]Key, bn)
						vals := make([]uint64, bn)
						found := make([]bool, bn)
						for j := range keys {
							keys[j] = key(w, rng.Uint64()%span)
						}
						st.MGet(keys, vals, found)
						for j := range keys {
							want, present := oracle[keys[j].Lo]
							if found[j] != present || (present && vals[j] != want) {
								t.Errorf("MGet(w=%d)[%d] = (%d, %v), oracle (%d, %v)",
									w, j, vals[j], found[j], want, present)
								return
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		chaos.Wait()
		if t.Failed() {
			return // a worker already reported the violation
		}

		verify(st, phase)

		// Persistence leg: snapshot, reload, verify the clone, continue
		// the next phase on the reloaded store.
		path := filepath.Join(dir, "phase.img")
		if err := st.Snapshot(path); err != nil {
			t.Fatalf("phase %d: Snapshot: %v", phase, err)
		}
		reloaded, mark, err := LoadSnapshotMark(path, true)
		if err != nil {
			t.Fatalf("phase %d: LoadSnapshotMark: %v", phase, err)
		}
		if mark != 0 {
			t.Fatalf("phase %d: snapshot mark = %d, wrote 0", phase, mark)
		}
		verify(reloaded, phase)

		// Crash-recovery leg: a reloaded image is byte-for-byte what a
		// post-crash restart opens, and restarts always run Recover. The
		// scan must repair nothing (the image was written quiesced),
		// must keep the fingerprint sidecar it just rebuilt coherent
		// (verify re-runs CheckConsistency), and the store must stay
		// fully serviceable for the next phase.
		rep, err := reloaded.Recover()
		if err != nil {
			t.Fatalf("phase %d: Recover: %v", phase, err)
		}
		if rep.CellsCleared != 0 || rep.CountCorrected {
			t.Fatalf("phase %d: Recover repaired a clean image: %+v", phase, rep)
		}
		verify(reloaded, phase)
		totalExpansions += st.Expansions()
		st = reloaded
	}
	if totalExpansions == 0 {
		t.Error("no online expansion fired: the property never saw the migration path")
	}
	if hits, skips := st.FingerprintStats(); hits == 0 || skips == 0 {
		t.Errorf("fingerprint filter never exercised: hits=%d skips=%d", hits, skips)
	}
}
