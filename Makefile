# grouphash — reproduction of "A Write-efficient and Consistent Hashing
# Scheme for Non-Volatile Memory" (ICPP 2018). Stdlib-only; any Go ≥ 1.22.

GO ?= go

.PHONY: all build test vet bench bench-json race torture fuzz serve-smoke figures figures-paper examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# test is the tier-1 gate: vet, the full suite, and the race detector
# over the concurrent table (whose seqlock read path and online
# expansion only a -race run can meaningfully exercise) plus the paged
# native backend and the network layer built on top of it.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core ./internal/server ./internal/client ./internal/native

race: torture
	$(GO) test -race ./internal/core ./internal/server ./internal/client ./internal/native ./internal/oplog ./internal/harness .
	$(GO) test -race -run 'OnlineExpansion' -count=4 -cpu 1,2,4 ./internal/core

# torture is the durability gate: the in-process crash-torture test
# (deterministic kill points: mid-group-commit, mid-rotation,
# mid-snapshot, mid-replay; torn log tails) under the race detector,
# plus ghtorture SIGKILLing a real serving process 20 times and
# auditing every acked write for exactly-once survival.
torture:
	$(GO) test -race -run 'CrashTorture' -count=1 ./internal/server
	$(GO) run -race ./cmd/ghtorture -cycles 20

bench:
	$(GO) test -bench=. -benchmem .

# bench-json regenerates the PR's benchmark numbers: acked-write
# throughput through the network server with and without the operation
# log (the cost of "acked means durable"), written to BENCH_PR4.json.
# Earlier PRs' files regenerate the same way (expand -> BENCH_PR3.json).
bench-json:
	$(GO) run ./cmd/ghbench -exp oplog -scale default -json BENCH_PR4.json

# Substrate microbenchmarks: dirty-word tracker (paged vs legacy map),
# cache hit path, memsim stack, and the fixed trace replay.
bench-substrate:
	$(GO) test -run XXX -bench 'BenchmarkSubstrate' .
	$(GO) test -run XXX -bench 'BenchmarkConcurrent.*Parallel' -cpu 1,2,4 ./internal/core
	$(GO) test -run XXX -bench 'BenchmarkExpandRehash' -cpu 1,2,4 ./internal/core

# serve-smoke exercises the ghserver/ghload pair end to end: start a
# server, push a short YCSB-B burst through it, SIGTERM it mid-serve,
# and check the graceful drain left a loadable image behind.
serve-smoke:
	$(GO) build -o /tmp/gh-smoke/ ./cmd/ghserver ./cmd/ghload
	rm -f /tmp/gh-smoke/store.pmfs
	/tmp/gh-smoke/ghserver -addr 127.0.0.1:47790 -image /tmp/gh-smoke/store.pmfs \
		>/tmp/gh-smoke/server.log 2>&1 & \
	SRV=$$!; \
	/tmp/gh-smoke/ghload -addr 127.0.0.1:47790 -records 20000 -ops 200000 -conns 4 || exit 1; \
	kill -TERM $$SRV && wait $$SRV || exit 1; \
	test -s /tmp/gh-smoke/store.pmfs || { echo "serve-smoke: no image saved"; exit 1; }; \
	grep -q "final snapshot" /tmp/gh-smoke/server.log || { echo "serve-smoke: no drain snapshot"; exit 1; }; \
	echo "serve-smoke: OK (drained image saved)"

fuzz:
	$(GO) test -fuzz=FuzzTableOps -fuzztime=30s ./internal/core
	$(GO) test -fuzz=FuzzCrashRecovery -fuzztime=30s ./internal/core

# Regenerate every table and figure of the paper at laptop scale,
# with CSV data under ./figures/.
figures:
	$(GO) run ./cmd/ghbench -scale default -csv figures | tee experiments_default.txt

# Exact §4.1 sizes: needs several GB of RAM and tens of minutes.
figures-paper:
	$(GO) run ./cmd/ghbench -scale paper -csv figures-paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/crashrecovery
	$(GO) run ./examples/dedup
	$(GO) run ./examples/backup
	$(GO) run ./examples/kvstore

clean:
	rm -rf figures figures-paper
	rm -f test_output.txt bench_output.txt
