# grouphash — reproduction of "A Write-efficient and Consistent Hashing
# Scheme for Non-Volatile Memory" (ICPP 2018). Stdlib-only; any Go ≥ 1.22.

GO ?= go

.PHONY: all build test vet bench race fuzz figures figures-paper examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/harness .

bench:
	$(GO) test -bench=. -benchmem .

fuzz:
	$(GO) test -fuzz=FuzzTableOps -fuzztime=30s ./internal/core
	$(GO) test -fuzz=FuzzCrashRecovery -fuzztime=30s ./internal/core

# Regenerate every table and figure of the paper at laptop scale,
# with CSV data under ./figures/.
figures:
	$(GO) run ./cmd/ghbench -scale default -csv figures | tee experiments_default.txt

# Exact §4.1 sizes: needs several GB of RAM and tens of minutes.
figures-paper:
	$(GO) run ./cmd/ghbench -scale paper -csv figures-paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/crashrecovery
	$(GO) run ./examples/dedup
	$(GO) run ./examples/backup
	$(GO) run ./examples/kvstore

clean:
	rm -rf figures figures-paper
	rm -f test_output.txt bench_output.txt
