# grouphash — reproduction of "A Write-efficient and Consistent Hashing
# Scheme for Non-Volatile Memory" (ICPP 2018). Stdlib-only; any Go ≥ 1.22.

GO ?= go

.PHONY: all build test vet bench race fuzz figures figures-paper examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# test is the tier-1 gate: vet, the full suite, and the race detector
# over the concurrent table (whose seqlock read path only a -race run
# can meaningfully exercise).
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core

race:
	$(GO) test -race ./internal/core ./internal/harness .

bench:
	$(GO) test -bench=. -benchmem .

# Substrate microbenchmarks: dirty-word tracker (paged vs legacy map),
# cache hit path, memsim stack, and the fixed trace replay.
bench-substrate:
	$(GO) test -run XXX -bench 'BenchmarkSubstrate' .
	$(GO) test -run XXX -bench 'BenchmarkConcurrent.*Parallel' -cpu 1,2,4 ./internal/core

fuzz:
	$(GO) test -fuzz=FuzzTableOps -fuzztime=30s ./internal/core
	$(GO) test -fuzz=FuzzCrashRecovery -fuzztime=30s ./internal/core

# Regenerate every table and figure of the paper at laptop scale,
# with CSV data under ./figures/.
figures:
	$(GO) run ./cmd/ghbench -scale default -csv figures | tee experiments_default.txt

# Exact §4.1 sizes: needs several GB of RAM and tens of minutes.
figures-paper:
	$(GO) run ./cmd/ghbench -scale paper -csv figures-paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/crashrecovery
	$(GO) run ./examples/dedup
	$(GO) run ./examples/backup
	$(GO) run ./examples/kvstore

clean:
	rm -rf figures figures-paper
	rm -f test_output.txt bench_output.txt
