# grouphash — reproduction of "A Write-efficient and Consistent Hashing
# Scheme for Non-Volatile Memory" (ICPP 2018). Stdlib-only; any Go ≥ 1.22.

GO ?= go

.PHONY: all build test vet bench bench-json bench-engines bench-workload bench-baseline bench-diff bench-allocs race torture fuzz fuzz-smoke chaos-smoke soak cover serve-smoke figures figures-paper examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# test is the tier-1 gate: vet, the full suite, and the race detector
# over the concurrent table (whose seqlock read path and online
# expansion only a -race run can meaningfully exercise) plus the paged
# native backend and the network layer built on top of it.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core ./internal/engine ./internal/server ./internal/client ./internal/native

race: torture fuzz-smoke chaos-smoke
	$(GO) test -race ./internal/core ./internal/engine ./internal/server ./internal/client ./internal/native ./internal/oplog ./internal/harness .
	$(GO) test -race -run 'OnlineExpansion' -count=4 -cpu 1,2,4 ./internal/core

# torture is the durability gate: the in-process crash-torture test
# (deterministic kill points: mid-group-commit, mid-rotation,
# mid-snapshot, mid-replay; torn log tails; legacy and adaptive
# commit modes) under the race detector, plus ghtorture SIGKILLing a
# real serving process and auditing every acked write for exactly-once
# survival — swept across the (T, B) group-commit matrix: synchronous,
# the 100µs/64KiB default, and a wide 1ms/256KiB window, the latter
# two with preallocated segments so kills land in zero-filled tails.
torture:
	$(GO) test -race -run 'CrashTorture' -count=1 ./internal/server
	$(GO) run -race ./cmd/ghtorture -cycles 20
	$(GO) run -race ./cmd/ghtorture -cycles 12 -sync-every 100us -sync-bytes 65536 -prealloc 1048576
	$(GO) run -race ./cmd/ghtorture -cycles 12 -sync-every 1ms -sync-bytes 262144 -prealloc 1048576

# chaos-smoke is the randomized-schedule gate: 21 seeded schedules
# (flagship + both logged comparison engines × seven seeds) of six
# events each — kills, torn tails, sticky fsync faults, drains,
# snapshot cycles, forced online expansions — against a live in-process
# serving stack under the race detector, a full recovery and map-oracle
# audit after every event. Deterministic: a failure prints the exact
# (engine, seed) reproduction command. The tight -timeout turns any
# future wedge into a fast failure with a full goroutine dump instead
# of a ten-minute stall.
chaos-smoke:
	$(GO) test -race -count=1 -timeout 240s -run 'TestChaosMatrix|TestScheduleDeterminism' ./internal/chaos

# soak is the opt-in real-process arm of the chaos matrix: ghchaos
# wraps ghtorture's supervisor/SIGKILL machinery around the same
# schedule generator — real child processes, real SIGKILL and SIGTERM,
# power-failure garbage on the live oplog segment — across the engine
# seam. Bounded here; pass -duration for an open-ended soak, e.g.
#   go run ./cmd/ghchaos -duration 30m -engine grouphash -capacity 4096
soak:
	$(GO) run ./cmd/ghchaos -cycles 20 -engine grouphash -capacity 4096 -seed 1
	$(GO) run ./cmd/ghchaos -cycles 12 -engine pfht-l -seed 2
	$(GO) run ./cmd/ghchaos -cycles 12 -engine linearprobe-l -seed 3

bench:
	$(GO) test -bench=. -benchmem .

# bench-json regenerates the PR's benchmark numbers: the end-to-end
# batching sweep (single-op pipelined with and without transparent
# coalescing vs explicit OpBatch frames of 1/8/64/256, with allocation
# and write-amplification counters per row), written to BENCH_PR8.json.
# Earlier PRs' files regenerate the same way (oplog -> BENCH_PR7.json,
# probe,expand -> BENCH_PR6.json, metrics -> BENCH_PR5.json, oplog at
# its pre-adaptive shape -> BENCH_PR4.json).
bench-json:
	$(GO) run ./cmd/ghbench -exp batch -scale default -json BENCH_PR8.json

# bench-engines regenerates the engine shoot-out: every scheme behind
# the internal/engine seam serving the batch experiment's strongest
# shape (16 conns, 256-op OpBatch frames, adaptive oplog) over loopback
# TCP. The grouphash rows here against BENCH_PR8's batch=256 rows bound
# the cost of the engine interface itself (acceptance: <= 1.05x).
bench-engines:
	$(GO) run ./cmd/ghbench -exp engines -scale default -json BENCH_PR9.json

# bench-workload regenerates the workload-shape table: uniform vs
# Zipfian θ=0.99 vs flash-crowd vs four-tenant load on the flagship,
# through the same loadgen machinery cmd/ghload exposes on the command
# line.
bench-workload:
	$(GO) run ./cmd/ghbench -exp workload -scale default -json BENCH_PR10.json

# The Go-benchmark set bench-baseline/bench-diff track: the substrate
# microbenchmarks, the fingerprint-sensitive lookup benchmarks, the
# allocation-pinned wire codecs, and the end-to-end acked-write path
# through the server (no log, legacy synchronous log, adaptive group
# commit) plus the batch-frame serving loop. -count 5 so ghbenchdiff
# compares means, not single noisy samples; -benchmem so allocs/op is
# tracked alongside ns/op.
BENCH_TRACKED = { \
	$(GO) test -run XXX -bench 'BenchmarkSubstrate' -benchtime 0.3s -benchmem -count 5 . && \
	$(GO) test -run XXX -bench 'BenchmarkLookup(Hit|Miss)' -benchtime 0.3s -benchmem -count 5 ./internal/core && \
	$(GO) test -run XXX -bench 'Benchmark(ReadResponseFixed|WriteResponseFixed|WriteBatchResponses|RequestReaderBatch)' -benchtime 0.3s -benchmem -count 5 ./internal/wire && \
	$(GO) test -run XXX -bench 'Benchmark(AckedWrite|ServeBatchPipeline)' -benchtime 0.3s -benchmem -count 5 ./internal/server ; }

# bench-baseline refreshes the committed reference numbers in
# bench_baseline.txt. Rerun it (on the same class of machine) whenever
# a PR intentionally shifts substrate or lookup performance, and commit
# the result so bench-diff has something honest to compare against.
bench-baseline:
	$(BENCH_TRACKED) > bench_baseline.txt
	@echo "bench-baseline: wrote bench_baseline.txt"

# bench-diff reruns the tracked benchmarks and prints old-vs-new
# against the committed baseline via the stdlib-only ghbenchdiff
# (benchstat is an external dependency this repo does not take).
bench-diff:
	$(BENCH_TRACKED) > /tmp/ghbench_current.txt
	$(GO) run ./cmd/ghbenchdiff bench_baseline.txt /tmp/ghbench_current.txt

# bench-allocs is the zero-allocation gate for the steady-state serving
# loop: the wire codec benchmarks and the end-to-end batch-frame server
# benchmark must stay at (exactly) the ceilings committed in
# bench_allocs_floors.txt — allocs/op is deterministic, so unlike
# bench-diff this one fails the build on regression.
bench-allocs:
	{ \
	$(GO) test -run XXX -bench 'Benchmark(ReadResponseFixed|WriteResponseFixed|WriteBatchResponses|RequestReaderBatch)' -benchtime 0.3s -benchmem -count 3 ./internal/wire && \
	$(GO) test -run XXX -bench 'BenchmarkServeBatchPipeline' -benchtime 0.3s -benchmem -count 3 ./internal/server ; } > /tmp/ghbench_allocs.txt
	$(GO) run ./cmd/ghbenchdiff -gate bench_allocs_floors.txt /tmp/ghbench_allocs.txt

# Substrate microbenchmarks: dirty-word tracker (paged vs legacy map),
# cache hit path, memsim stack, and the fixed trace replay.
bench-substrate:
	$(GO) test -run XXX -bench 'BenchmarkSubstrate' .
	$(GO) test -run XXX -bench 'BenchmarkConcurrent.*Parallel' -cpu 1,2,4 ./internal/core
	$(GO) test -run XXX -bench 'BenchmarkExpandRehash' -cpu 1,2,4 ./internal/core

# serve-smoke exercises the ghserver/ghload pair end to end for every
# engine behind the -engine flag: two generations per engine — start a
# server, push a short YCSB-B burst through it, SIGTERM it mid-serve,
# check the graceful drain left an image behind, then boot a second
# generation FROM that image and do it again. The generation-2 log must
# show the image actually loaded, so the real-binary snapshot/restart
# cycle is proven for the comparison schemes, not just the flagship.
serve-smoke:
	$(GO) build -o /tmp/gh-smoke/ ./cmd/ghserver ./cmd/ghload
	@for e in grouphash pfht pathhash chained linearprobe; do \
		rm -f /tmp/gh-smoke/store-$$e.pmfs; \
		for gen in 1 2; do \
			/tmp/gh-smoke/ghserver -addr 127.0.0.1:47790 -engine $$e -capacity 262144 \
				-image /tmp/gh-smoke/store-$$e.pmfs \
				>/tmp/gh-smoke/server-$$e-$$gen.log 2>&1 & \
			SRV=$$!; sleep 0.2; \
			/tmp/gh-smoke/ghload -addr 127.0.0.1:47790 -records 8000 -ops 60000 -conns 4 || exit 1; \
			kill -TERM $$SRV && wait $$SRV || exit 1; \
			test -s /tmp/gh-smoke/store-$$e.pmfs || { echo "serve-smoke($$e): no image saved"; exit 1; }; \
			grep -q "final snapshot" /tmp/gh-smoke/server-$$e-$$gen.log || { echo "serve-smoke($$e): no drain snapshot"; exit 1; }; \
		done; \
		grep -q "loaded .* items" /tmp/gh-smoke/server-$$e-2.log || { echo "serve-smoke($$e): restart did not load the image"; exit 1; }; \
		echo "serve-smoke($$e): OK (two generations, image reloaded)"; \
	done

fuzz:
	$(GO) test -fuzz=FuzzTableOps -fuzztime=30s ./internal/core
	$(GO) test -fuzz=FuzzCrashRecovery -fuzztime=30s ./internal/core

# fuzz-smoke is the hostile-input gate over the two surfaces that parse
# bytes an attacker (or a crash) controls — the wire protocol and the
# on-disk oplog — plus the façade's randomised oracle property test
# under the race detector. ~30s per fuzz target; part of `make race`.
fuzz-smoke:
	$(GO) test -fuzz=FuzzWireDecode -fuzztime=30s ./internal/wire
	$(GO) test -fuzz=FuzzOplogScan -fuzztime=30s ./internal/oplog
	$(GO) test -race -run TestConcurrentPropertyOracle -count=1 .

# cover enforces statement-coverage floors on the packages whose whole
# job is being provably correct: the metrics/exposition layer, the wire
# codec and the operation log. Floors sit a few points under current
# coverage so honest refactors pass but untested new code fails.
cover:
	@for spec in internal/stats:90 internal/wire:92 internal/oplog:78; do \
		pkg=$${spec%:*}; floor=$${spec#*:}; \
		pct=$$($(GO) test -cover ./$$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		echo "$$pkg: $$pct% (floor $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit (p+0 >= f+0) ? 0 : 1 }' \
			|| { echo "cover: $$pkg below its $$floor% floor"; exit 1; }; \
	done

# Regenerate every table and figure of the paper at laptop scale,
# with CSV data under ./figures/.
figures:
	$(GO) run ./cmd/ghbench -scale default -csv figures | tee experiments_default.txt

# Exact §4.1 sizes: needs several GB of RAM and tens of minutes.
figures-paper:
	$(GO) run ./cmd/ghbench -scale paper -csv figures-paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/crashrecovery
	$(GO) run ./examples/dedup
	$(GO) run ./examples/backup
	$(GO) run ./examples/kvstore

clean:
	rm -rf figures figures-paper
	rm -f test_output.txt bench_output.txt
