package grouphash_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllExportedIdentifiersDocumented walks every non-test source file
// of the module and fails for exported declarations without a doc
// comment — the repository's documentation contract.
func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	fset := token.NewFileSet()

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					missing = append(missing, fset.Position(d.Pos()).String()+" func "+d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDoc && s.Doc == nil {
							missing = append(missing, fset.Position(s.Pos()).String()+" type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
								missing = append(missing, fset.Position(s.Pos()).String()+" value "+n.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:", len(missing))
		for _, m := range missing {
			t.Log("  " + m)
		}
	}
}
