// Command ghverify inspects a saved NVM image (written by ghkv's `save`
// or grouphash.Sim.SaveImage): it opens the group-hash table at the
// image's root, checks every consistency invariant, and optionally
// repairs the table with the Algorithm-4 recovery scan and writes the
// repaired image back.
//
// Usage:
//
//	ghverify -image table.img            # check only
//	ghverify -image table.img -repair    # recover + save back
//
// Exit status: 0 consistent (or repaired), 1 violations found and not
// repaired, 2 usage/IO errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"grouphash"
	"grouphash/internal/memsim"
	"grouphash/internal/pmfs"
)

func main() {
	image := flag.String("image", "", "path to a saved NVM image")
	repair := flag.Bool("repair", false, "run recovery and write the repaired image back")
	flag.Parse()
	if *image == "" {
		fmt.Fprintln(os.Stderr, "ghverify: -image is required")
		os.Exit(2)
	}

	mem, root, err := pmfs.Load(*image, memsim.Config{Seed: 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghverify: %v\n", err)
		os.Exit(2)
	}
	store, err := grouphash.Open(mem, root, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghverify: opening table: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("image:    %s\n", *image)
	fmt.Printf("table:    %s\n", store)
	fmt.Printf("root:     %#x, region %d bytes\n", root, mem.Size())

	violations := store.CheckConsistency()
	if len(violations) == 0 {
		fmt.Println("status:   consistent")
		return
	}
	fmt.Printf("status:   %d violation(s)\n", len(violations))
	for _, v := range violations {
		fmt.Println("  -", v)
	}
	if !*repair {
		fmt.Println("run with -repair to recover")
		os.Exit(1)
	}
	rep, err := store.Recover()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghverify: recovery: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("repaired: scanned %d cells, scrubbed %d, count corrected %v\n",
		rep.CellsScanned, rep.CellsCleared, rep.CountCorrected)
	if after := store.CheckConsistency(); len(after) != 0 {
		fmt.Fprintf(os.Stderr, "ghverify: STILL INCONSISTENT after recovery: %v\n", after)
		os.Exit(1)
	}
	if err := pmfs.Save(*image, mem, root); err != nil {
		fmt.Fprintf(os.Stderr, "ghverify: saving repaired image: %v\n", err)
		os.Exit(2)
	}
	fmt.Println("status:   repaired and saved")
}
