// Command ghkv is an interactive key-value REPL over a group-hash store
// running on the simulated NVM machine. It exists to make the paper's
// consistency story tangible: you can insert items, pull the plug with
// `crash`, run `recover`, and watch the Algorithm-4 scan put the table
// back together — with the simulated performance counters printed along
// the way.
//
// Commands:
//
//	put <key> <value>     upsert (keys and values are uint64; key != 0)
//	insert <key> <value>  paper-semantics insert (duplicates allowed)
//	get <key>             lookup
//	del <key>             delete
//	len | stats           table statistics and simulated counters
//	crash [p]             power failure; each dirty word survives with
//	                      probability p (default 0.5)
//	recover               run the recovery scan
//	check                 verify consistency invariants
//	fill <n>              bulk-insert n sequential items
//	save <path>           persist the NVM image to a file (PMFS analogue)
//	help | quit
//
// Start with -image <path> to resume from a saved image.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"grouphash"
)

func main() {
	image := flag.String("image", "", "resume from a saved NVM image file")
	flag.Parse()

	var sim *grouphash.Sim
	var err error
	if *image != "" {
		sim, err = grouphash.LoadImage(*image, grouphash.SimOptions{Seed: 42}, false)
		if err == nil {
			fmt.Printf("resumed %d items from %s\n", sim.Len(), *image)
		}
	} else {
		sim, err = grouphash.NewSimulated(
			grouphash.Options{Capacity: 1 << 16, DisableExpand: true},
			grouphash.SimOptions{Seed: 42},
		)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghkv:", err)
		os.Exit(1)
	}
	fmt.Println("ghkv — group hashing over simulated NVM (type 'help')")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "put", "insert":
			if len(args) != 2 {
				fmt.Println("usage:", cmd, "<key> <value>")
				continue
			}
			k, err1 := strconv.ParseUint(args[0], 10, 64)
			v, err2 := strconv.ParseUint(args[1], 10, 64)
			if err1 != nil || err2 != nil {
				fmt.Println("keys and values are unsigned integers")
				continue
			}
			before := sim.Counters()
			var opErr error
			if cmd == "put" {
				opErr = sim.Put(grouphash.Key{Lo: k}, v)
			} else {
				opErr = sim.Insert(grouphash.Key{Lo: k}, v)
			}
			if opErr != nil {
				fmt.Println("error:", opErr)
				continue
			}
			d := sim.Counters().Sub(before)
			fmt.Printf("ok (%.0f simulated ns, %d flushes, %d fences)\n", d.ClockNs, d.Flushes, d.Fences)
		case "get":
			if len(args) != 1 {
				fmt.Println("usage: get <key>")
				continue
			}
			k, err := strconv.ParseUint(args[0], 10, 64)
			if err != nil {
				fmt.Println("keys are unsigned integers")
				continue
			}
			before := sim.Counters()
			v, ok := sim.Get(grouphash.Key{Lo: k})
			d := sim.Counters().Sub(before)
			if ok {
				fmt.Printf("%d (%.0f simulated ns, %d L3 misses)\n", v, d.ClockNs, d.L3Misses)
			} else {
				fmt.Printf("not found (%.0f simulated ns)\n", d.ClockNs)
			}
		case "del":
			if len(args) != 1 {
				fmt.Println("usage: del <key>")
				continue
			}
			k, err := strconv.ParseUint(args[0], 10, 64)
			if err != nil {
				fmt.Println("keys are unsigned integers")
				continue
			}
			if sim.Delete(grouphash.Key{Lo: k}) {
				fmt.Println("deleted")
			} else {
				fmt.Println("not found")
			}
		case "len", "stats":
			c := sim.Counters()
			fmt.Printf("%s\n", sim.Store)
			fmt.Printf("simulated: %.2f ms, %d flushes, %d fences, %d L3 misses, %d NVM words written\n",
				c.ClockNs/1e6, c.Flushes, c.Fences, c.L3Misses, c.NVM.WordsDirtied)
		case "crash":
			p := 0.5
			if len(args) == 1 {
				if v, err := strconv.ParseFloat(args[0], 64); err == nil {
					p = v
				}
			}
			out := sim.Crash(p)
			fmt.Printf("power failure: %d dirty words, %d survived, %d rolled back\n",
				out.DirtyWords, out.Survived, out.RolledBack)
			fmt.Println("run 'recover' before trusting the table again")
		case "recover":
			rep, err := sim.Recover()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("scanned %d cells, scrubbed %d, count corrected: %v\n",
				rep.CellsScanned, rep.CellsCleared, rep.CountCorrected)
		case "check":
			if msgs := sim.CheckConsistency(); len(msgs) == 0 {
				fmt.Println("consistent")
			} else {
				for _, m := range msgs {
					fmt.Println("VIOLATION:", m)
				}
			}
		case "fill":
			if len(args) != 1 {
				fmt.Println("usage: fill <n>")
				continue
			}
			n, err := strconv.ParseUint(args[0], 10, 64)
			if err != nil {
				fmt.Println("n is an unsigned integer")
				continue
			}
			base := sim.Len() + 1_000_000
			inserted := uint64(0)
			for i := uint64(0); i < n; i++ {
				if err := sim.Insert(grouphash.Key{Lo: base + i}, i); err != nil {
					fmt.Println("stopped early:", err)
					break
				}
				inserted++
			}
			fmt.Printf("inserted %d items, load factor %.3f\n", inserted, sim.LoadFactor())
		case "save":
			if len(args) != 1 {
				fmt.Println("usage: save <path>")
				continue
			}
			if err := sim.SaveImage(args[0]); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("image saved; resume with: ghkv -image %s\n", args[0])
		case "help":
			fmt.Println("put/insert <k> <v>, get <k>, del <k>, len, stats, crash [p], recover, check, fill <n>, save <path>, quit")
		case "quit", "exit":
			return
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
	}
}
