// Command ghtorture kills a real serving process over and over and
// checks that no acked write is ever lost or duplicated.
//
// It is the process-level companion to the in-process crash-torture
// test (internal/server): the supervisor re-executes its own binary in
// a child mode that recovers and serves exactly the way ghserver does
// (image + oplog replay, group-committed acks, aggressive background
// snapshots), hammers it with inserts over real TCP — alternating
// pipelined single frames (server-coalesced into stripe-grouped runs)
// with explicit OpBatch frames — then SIGKILLs it at a random moment:
// sometimes mid-snapshot, mid-rotation, mid-group-commit or mid-batch,
// the scheduler decides. At the next
// cycle's recovery the supervisor audits the child: every acked key
// present with its value, every key whose batch died unacked present
// at most once, and the store's Len equal to the distinct present keys
// — so a double-applied replay cannot hide.
//
// Usage:
//
//	ghtorture -cycles 20 -dir /tmp/ghtorture
//
// Exits non-zero at the first contract violation.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"grouphash"
	"grouphash/internal/client"
	"grouphash/internal/layout"
	"grouphash/internal/oplog"
	"grouphash/internal/server"
	"grouphash/internal/wire"
)

func main() {
	var (
		cycles   = flag.Int("cycles", 20, "kill/restart cycles to run")
		dir      = flag.String("dir", "", "state directory (default: a fresh temp dir, removed on success)")
		serve    = flag.Bool("serve", false, "internal: run as the server child process")
		addrFile = flag.String("addr-file", "", "internal: file the child publishes its address to")
		seed     = flag.Int64("seed", 1, "kill-timing random seed")
		syncT    = flag.Duration("sync-every", 0, "child oplog adaptive group-commit window (0 = legacy synchronous fsync per batch)")
		syncB    = flag.Int("sync-bytes", 0, "child oplog byte trigger: close the commit window early at this many staged bytes")
		prealloc = flag.Int64("prealloc", 0, "child oplog segment preallocation in bytes (0 = grow on demand)")
	)
	flag.Parse()
	lcfg := oplog.Config{SyncEvery: *syncT, SyncBytes: *syncB, PreallocBytes: *prealloc}
	if *serve {
		child(*dir, *addrFile, lcfg)
		return
	}
	log.SetPrefix("ghtorture: ")
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	cleanup := false
	if *dir == "" {
		d, err := os.MkdirTemp("", "ghtorture-*")
		if err != nil {
			log.Fatal(err)
		}
		*dir = d
		cleanup = true
	}
	supervise(*dir, *cycles, *seed, lcfg)
	if cleanup {
		os.RemoveAll(*dir)
	}
}

// child is the process that gets killed: ghserver's recovery and
// serving loop, plus an address file so the supervisor can find the
// kernel-assigned port.
func child(dir, addrFile string, lcfg oplog.Config) {
	log.SetPrefix(fmt.Sprintf("child[%d]: ", os.Getpid()))
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	img := filepath.Join(dir, "store.pmfs")
	base := filepath.Join(dir, "oplog")

	var st *grouphash.Store
	var mark uint64
	var err error
	if _, statErr := os.Stat(img); statErr == nil {
		if st, mark, err = grouphash.LoadSnapshotMark(img, true); err != nil {
			log.Fatalf("loading image: %v", err)
		}
	} else {
		if st, err = grouphash.New(grouphash.Options{Capacity: 1 << 12, Concurrent: true}); err != nil {
			log.Fatal(err)
		}
	}
	applied, next, err := st.ReplayOplog(base, mark)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	lg, err := oplog.OpenConfig(base, next, lcfg)
	if err != nil {
		log.Fatalf("opening oplog: %v", err)
	}
	log.Printf("recovered: mark=%d replayed=%d items=%d", mark, applied, st.Len())

	srv, err := server.New(server.Config{
		Store:         st,
		SnapshotPath:  img,
		SnapshotEvery: 25 * time.Millisecond, // aggressive: kills land mid-snapshot
		Oplog:         lg,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Publish the address atomically so the supervisor never reads a
	// half-written file.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		log.Fatal(err)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	case <-sig:
		if err := srv.Drain(); err != nil {
			log.Fatalf("drain: %v", err)
		}
		<-serveErr
	}
}

// kstate is a key's supervisor-side model state.
type kstate int

const (
	acked   kstate = iota // server acked the insert: present, exactly once
	tainted               // batch died unacked: absent, or present exactly once
)

func supervise(dir string, cycles int, seed int64, lcfg oplog.Config) {
	rng := rand.New(rand.NewSource(seed))
	keys := make(map[uint64]kstate)
	nextKey := uint64(1)
	start := time.Now()

	for cycle := 0; cycle < cycles; cycle++ {
		proc, addr := startChild(dir, lcfg)
		verify(addr, keys, cycle)

		// Hammer insert bursts until the kill, alternating the wire
		// shape every burst: pipelined single frames (the server
		// coalesces them) and one explicit OpBatch frame (released
		// all-or-nothing on its highest LSN) — so SIGKILLs land
		// mid-coalesced-run and mid-batch-frame alike. Either way a
		// burst's keys are acked as a unit or tainted as a unit (the
		// client returns no partial responses).
		const batch = 64
		c, err := client.Dial(addr, 2*time.Second)
		if err != nil {
			log.Fatalf("cycle %d: dial: %v", cycle, err)
		}
		loadDone := make(chan struct{})
		go func() {
			defer close(loadDone)
			for useBatch := false; ; useBatch = !useBatch {
				reqs := make([]wire.Request, batch)
				base := nextKey
				for j := range reqs {
					k := base + uint64(j)
					reqs[j] = wire.Request{Op: wire.OpInsert, Key: layout.Key{Lo: k}, Value: k * 3}
				}
				nextKey += batch
				var resps []wire.Response
				var err error
				if useBatch {
					resps, err = c.DoBatch(reqs)
				} else {
					resps, err = c.Do(reqs)
				}
				if err != nil {
					for j := range reqs {
						keys[base+uint64(j)] = tainted
					}
					return
				}
				for j, r := range resps {
					if r.Status != wire.StatusOK {
						log.Fatalf("cycle %d: insert status %d", cycle, r.Status)
					}
					keys[base+uint64(j)] = acked
				}
			}
		}()
		time.Sleep(time.Duration(30+rng.Intn(120)) * time.Millisecond)
		if err := proc.Kill(); err != nil { // SIGKILL: no drain, no goodbye
			log.Fatalf("cycle %d: kill: %v", cycle, err)
		}
		proc.Wait()
		<-loadDone
		c.Close()
	}

	// One last recovery audits the final kill, then a clean drain and
	// one more audit prove the graceful path preserves everything too.
	proc, addr := startChild(dir, lcfg)
	verify(addr, keys, cycles)
	proc.Signal(syscall.SIGTERM)
	proc.Wait()
	proc, addr = startChild(dir, lcfg)
	verify(addr, keys, cycles+1)
	proc.Signal(syscall.SIGTERM)
	proc.Wait()

	n := 0
	for _, st := range keys {
		if st == acked {
			n++
		}
	}
	log.Printf("PASS: %d cycles, %d acked writes verified exactly-once, in %s",
		cycles, n, time.Since(start).Round(time.Millisecond))
}

// startChild launches the serve-mode child with the run's oplog
// configuration and waits for its address.
func startChild(dir string, lcfg oplog.Config) (*os.Process, string) {
	addrFile := filepath.Join(dir, "addr")
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-serve", "-dir", dir, "-addr-file", addrFile,
		"-sync-every", lcfg.SyncEvery.String(),
		"-sync-bytes", fmt.Sprint(lcfg.SyncBytes),
		"-prealloc", fmt.Sprint(lcfg.PreallocBytes))
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("starting child: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd.Process, string(b)
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			log.Fatal("child never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// verify audits a freshly recovered child against the model: acked
// keys present with their value, tainted keys present at most once or
// gone (their fate is then pinned for the rest of the run), and Len
// equal to the distinct present keys — the exactly-once check.
func verify(addr string, keys map[uint64]kstate, cycle int) {
	c, err := client.Dial(addr, 2*time.Second)
	if err != nil {
		log.Fatalf("verify %d: dial: %v", cycle, err)
	}
	defer c.Close()
	const batch = 512
	all := make([]uint64, 0, len(keys))
	for k := range keys {
		all = append(all, k)
	}
	present := uint64(0)
	for off := 0; off < len(all); off += batch {
		end := off + batch
		if end > len(all) {
			end = len(all)
		}
		reqs := make([]wire.Request, 0, end-off)
		for _, k := range all[off:end] {
			reqs = append(reqs, wire.Request{Op: wire.OpGet, Key: layout.Key{Lo: k}})
		}
		resps, err := c.Do(reqs)
		if err != nil {
			log.Fatalf("verify %d: %v", cycle, err)
		}
		for i, r := range resps {
			k := all[off+i]
			switch r.Status {
			case wire.StatusOK:
				if r.Value != k*3 {
					log.Fatalf("verify %d: key %d has value %d, want %d", cycle, k, r.Value, k*3)
				}
				present++
				keys[k] = acked // durable now, whatever its batch's fate was
			case wire.StatusNotFound:
				if keys[k] == acked {
					log.Fatalf("verify %d: ACKED WRITE LOST: key %d", cycle, k)
				}
				delete(keys, k) // unacked and gone: out of the model
			default:
				log.Fatalf("verify %d: get status %d", cycle, r.Status)
			}
		}
	}
	n, err := c.Len()
	if err != nil {
		log.Fatalf("verify %d: len: %v", cycle, err)
	}
	if n != present {
		log.Fatalf("verify %d: server Len=%d but %d distinct keys are present — a replayed write was applied twice", cycle, n, present)
	}
	log.Printf("cycle %d verified: %d keys present, len matches", cycle, present)
}
