// Command ghchaos is the real-process arm of the chaos matrix: it
// wraps ghtorture's supervisor/child SIGKILL machinery around the
// internal/chaos schedule generator and the engine seam, so seeded
// randomized fault schedules run against any engine as an actual
// serving process — SIGKILL at scheduled moments, SIGTERM drains,
// power-failure garbage appended to the live oplog segment — while a
// supervisor-side model audits every acked insert for exactly-once
// survival across recoveries.
//
// The in-process matrix (`make chaos-smoke`) composes more injector
// kinds (sticky fsync faults, on-demand snapshots, torn-tail
// truncation need in-process hooks); this command is the soak: real
// processes, real SIGKILL, unbounded wall clock.
//
// Usage:
//
//	ghchaos -cycles 20 -engine pfht-l          # one schedule, then exit
//	ghchaos -duration 30m -engine grouphash    # soak until the clock runs out
//
// Exits non-zero at the first contract violation; the failing seed and
// cycle are printed for exact reproduction.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"grouphash/internal/chaos"
	"grouphash/internal/client"
	"grouphash/internal/engine"
	"grouphash/internal/layout"
	"grouphash/internal/oplog"
	"grouphash/internal/server"
	"grouphash/internal/trace"
	"grouphash/internal/wire"
)

func main() {
	var (
		cycles   = flag.Int("cycles", 20, "kill/restart cycles to run (ignored when -duration is set)")
		duration = flag.Duration("duration", 0, "soak mode: run cycles until this much wall clock has elapsed")
		eng      = flag.String("engine", "grouphash", "engine to serve (grouphash, pfht[-l], pathhash[-l], chained, linearprobe[-l])")
		capacity = flag.Uint64("capacity", 1<<16, "engine capacity (small values force online expansions on the flagship)")
		dir      = flag.String("dir", "", "state directory (default: a fresh temp dir, removed on success)")
		serve    = flag.Bool("serve", false, "internal: run as the server child process")
		addrFile = flag.String("addr-file", "", "internal: file the child publishes its address to")
		seed     = flag.Int64("seed", 1, "schedule seed (schedules derive from it deterministically)")
		syncT    = flag.Duration("sync-every", 100*time.Microsecond, "child oplog adaptive group-commit window (0 = synchronous fsync per batch)")
		syncB    = flag.Int("sync-bytes", 64<<10, "child oplog byte trigger")
		prealloc = flag.Int64("prealloc", 0, "child oplog segment preallocation in bytes")
	)
	flag.Parse()
	lcfg := oplog.Config{SyncEvery: *syncT, SyncBytes: *syncB, PreallocBytes: *prealloc}
	spec := engine.Spec{Name: *eng, Capacity: *capacity}
	if *serve {
		child(*dir, *addrFile, spec, lcfg)
		return
	}
	log.SetPrefix("ghchaos: ")
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if _, err := engine.New(spec); err != nil {
		log.Fatal(err)
	}

	cleanup := false
	if *dir == "" {
		d, err := os.MkdirTemp("", "ghchaos-*")
		if err != nil {
			log.Fatal(err)
		}
		*dir = d
		cleanup = true
	}
	supervise(*dir, *cycles, *duration, *seed, spec, lcfg)
	if cleanup {
		os.RemoveAll(*dir)
	}
}

// child recovers through the engine seam exactly the way ghserver
// does — image + oplog replay — then serves with aggressive background
// snapshots so kills land mid-snapshot too.
func child(dir, addrFile string, spec engine.Spec, lcfg oplog.Config) {
	log.SetPrefix(fmt.Sprintf("child[%d]: ", os.Getpid()))
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	img := filepath.Join(dir, "store.pmfs")
	base := filepath.Join(dir, "oplog")

	var eng engine.Engine
	var mark uint64
	var err error
	if _, statErr := os.Stat(img); statErr == nil {
		if eng, mark, err = engine.Load(spec, img); err != nil {
			log.Fatalf("loading image: %v", err)
		}
	} else if eng, err = engine.New(spec); err != nil {
		log.Fatal(err)
	}
	applied, next, err := eng.ReplayOplog(base, mark)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	lg, err := oplog.OpenConfig(base, next, lcfg)
	if err != nil {
		log.Fatalf("opening oplog: %v", err)
	}
	log.Printf("recovered %s: mark=%d replayed=%d items=%d", spec.Name, mark, applied, eng.Len())

	srv, err := server.New(server.Config{
		Engine:        eng,
		SnapshotPath:  img,
		SnapshotEvery: 25 * time.Millisecond,
		Oplog:         lg,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		log.Fatal(err)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	case <-sig:
		if err := srv.Drain(); err != nil {
			log.Fatalf("drain: %v", err)
		}
		<-serveErr
	}
}

// kstate is a key's supervisor-side model state.
type kstate int

const (
	acked   kstate = iota // server acked the insert: present, exactly once
	tainted               // batch died unacked: absent, or present exactly once
)

func supervise(dir string, cycles int, soak time.Duration, seed int64, spec engine.Spec, lcfg oplog.Config) {
	rng := rand.New(rand.NewSource(seed ^ 0x6b8b4567))
	keys := make(map[uint64]kstate)
	nextKey := uint64(1)
	start := time.Now()
	full := false

	runCycle := func(cycle int, ev chaos.Event) {
		proc, addr := startChild(dir, spec, lcfg)
		verify(addr, keys, cycle)

		// Mixed load: tracked insert bursts (alternating pipelined and
		// OpBatch framing, like ghtorture) interleaved with Zipfian
		// reads over everything inserted so far — kills land on a
		// realistic read/write mix, and reads of a freshly recovered
		// tail exercise the cold paths too.
		const batch = 64
		c, err := client.Dial(addr, 2*time.Second)
		if err != nil {
			log.Fatalf("cycle %d: dial: %v", cycle, err)
		}
		loadDone := make(chan struct{})
		go func() {
			defer close(loadDone)
			for useBatch := false; ; useBatch = !useBatch {
				if full {
					// Fixed-capacity engine filled up: keep the chaos
					// alive on reads alone.
					if !readBurst(c, nextKey, batch, rng.Int63()) {
						return
					}
					continue
				}
				reqs := make([]wire.Request, batch)
				base := nextKey
				for j := range reqs {
					k := base + uint64(j)
					reqs[j] = wire.Request{Op: wire.OpInsert, Key: layout.Key{Lo: k}, Value: k * 3}
				}
				nextKey += batch
				var resps []wire.Response
				var err error
				if useBatch {
					resps, err = c.DoBatch(reqs)
				} else {
					resps, err = c.Do(reqs)
				}
				if err != nil {
					for j := range reqs {
						keys[base+uint64(j)] = tainted
					}
					return
				}
				for j, r := range resps {
					switch r.Status {
					case wire.StatusOK:
						keys[base+uint64(j)] = acked
					case wire.StatusFull:
						delete(keys, base+uint64(j))
						full = true
					case wire.StatusDraining:
						delete(keys, base+uint64(j))
						return
					default:
						log.Fatalf("cycle %d: insert status %d", cycle, r.Status)
					}
				}
				if nextKey > 256 && !readBurst(c, nextKey, batch, rng.Int63()) {
					return
				}
			}
		}()

		// The schedule decides how this generation dies: SIGTERM for
		// drain events (the graceful path must also preserve
		// everything), SIGKILL for every crash class — with
		// power-failure garbage appended to the live segment for
		// kill+tear. Delays are rescaled from the in-process schedule
		// to real-process time.
		time.Sleep(30*time.Millisecond + ev.Delay*5 + time.Duration(rng.Intn(40))*time.Millisecond)
		if ev.Kind == chaos.KindDrain {
			proc.Signal(syscall.SIGTERM)
		} else if err := proc.Kill(); err != nil {
			log.Fatalf("cycle %d: kill: %v", cycle, err)
		}
		proc.Wait()
		<-loadDone
		c.Close()
		if ev.Kind == chaos.KindKillTear {
			appendGarbage(dir, rng)
		}
	}

	cycle := 0
	for sched := chaos.NewSchedule(seed, cycles); ; sched = chaos.NewSchedule(seed+int64(cycle), cycles) {
		for _, ev := range sched {
			log.Printf("cycle %d: %s", cycle, ev)
			runCycle(cycle, ev)
			cycle++
			if soak > 0 && time.Since(start) > soak {
				break
			}
		}
		if soak == 0 || time.Since(start) > soak {
			break
		}
	}

	// One last recovery audits the final kill, then a clean drain and
	// one more audit prove the graceful path preserved everything too.
	proc, addr := startChild(dir, spec, lcfg)
	verify(addr, keys, cycle)
	proc.Signal(syscall.SIGTERM)
	proc.Wait()
	proc, addr = startChild(dir, spec, lcfg)
	verify(addr, keys, cycle+1)
	proc.Signal(syscall.SIGTERM)
	proc.Wait()

	n := 0
	for _, st := range keys {
		if st == acked {
			n++
		}
	}
	log.Printf("PASS: engine=%s seed=%d %d cycles, %d acked writes verified exactly-once, in %s",
		spec.Name, seed, cycle, n, time.Since(start).Round(time.Millisecond))
}

// readBurst sends one pipelined burst of Zipfian-skewed reads over the
// inserted range; returns false when the connection died under it.
func readBurst(c *client.Client, maxKey uint64, n int, seed int64) bool {
	if maxKey < 4 {
		return true
	}
	z := trace.NewZipfian(seed, maxKey-1, 0.99)
	reqs := make([]wire.Request, n)
	for i := range reqs {
		reqs[i] = wire.Request{Op: wire.OpGet, Key: layout.Key{Lo: z.Next() + 1}}
	}
	_, err := c.Do(reqs)
	return err == nil
}

// appendGarbage simulates the power-failure tail damage an external
// process CAN inflict: trailing garbage on the newest oplog segment.
// (Truncation is the in-process matrix's job — from outside, the
// acked-durable boundary inside the segment is unknowable, so cutting
// could delete acked writes and fake a violation.)
func appendGarbage(dir string, rng *rand.Rand) {
	segs, err := filepath.Glob(filepath.Join(dir, "oplog.*"))
	if err != nil || len(segs) == 0 {
		return
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return
	}
	defer f.Close()
	garbage := make([]byte, 1+rng.Intn(64))
	rng.Read(garbage)
	f.Write(garbage)
	log.Printf("tore tail: %d garbage bytes onto %s", len(garbage), filepath.Base(segs[len(segs)-1]))
}

// startChild launches the serve-mode child with the run's engine and
// oplog configuration and waits for its address.
func startChild(dir string, spec engine.Spec, lcfg oplog.Config) (*os.Process, string) {
	addrFile := filepath.Join(dir, "addr")
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-serve", "-dir", dir, "-addr-file", addrFile,
		"-engine", spec.Name,
		"-capacity", fmt.Sprint(spec.Capacity),
		"-sync-every", lcfg.SyncEvery.String(),
		"-sync-bytes", fmt.Sprint(lcfg.SyncBytes),
		"-prealloc", fmt.Sprint(lcfg.PreallocBytes))
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("starting child: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd.Process, string(b)
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			log.Fatal("child never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// verify audits a freshly recovered child against the model: acked
// keys present with their value, tainted keys present at most once or
// gone (their fate is then pinned for the rest of the run), and Len
// equal to the distinct present keys — the exactly-once check.
func verify(addr string, keys map[uint64]kstate, cycle int) {
	c, err := client.Dial(addr, 2*time.Second)
	if err != nil {
		log.Fatalf("verify %d: dial: %v", cycle, err)
	}
	defer c.Close()
	const batch = 512
	all := make([]uint64, 0, len(keys))
	for k := range keys {
		all = append(all, k)
	}
	present := uint64(0)
	for off := 0; off < len(all); off += batch {
		end := off + batch
		if end > len(all) {
			end = len(all)
		}
		reqs := make([]wire.Request, 0, end-off)
		for _, k := range all[off:end] {
			reqs = append(reqs, wire.Request{Op: wire.OpGet, Key: layout.Key{Lo: k}})
		}
		resps, err := c.Do(reqs)
		if err != nil {
			log.Fatalf("verify %d: %v", cycle, err)
		}
		for i, r := range resps {
			k := all[off+i]
			switch r.Status {
			case wire.StatusOK:
				if r.Value != k*3 {
					log.Fatalf("verify %d: key %d has value %d, want %d", cycle, k, r.Value, k*3)
				}
				present++
				keys[k] = acked // durable now, whatever its batch's fate was
			case wire.StatusNotFound:
				if keys[k] == acked {
					log.Fatalf("verify %d: ACKED WRITE LOST: key %d", cycle, k)
				}
				delete(keys, k) // unacked and gone: out of the model
			default:
				log.Fatalf("verify %d: get status %d", cycle, r.Status)
			}
		}
	}
	n, err := c.Len()
	if err != nil {
		log.Fatalf("verify %d: len: %v", cycle, err)
	}
	if n != present {
		log.Fatalf("verify %d: server Len=%d but %d distinct keys are present — a replayed write was applied twice", cycle, n, present)
	}
	log.Printf("cycle %d verified: %d keys present, len matches", cycle, present)
}
