// Command ghtrace generates and inspects the evaluation workloads
// (RandomNum, Bag-of-Words, Fingerprint).
//
// Usage:
//
//	ghtrace -trace randomnum -n 1000000 -mode stats
//	ghtrace -trace bagofwords -n 20 -mode dump
//
// Modes:
//
//	dump    print the first n items as "keyLo keyHi value" lines
//	stats   stream n items and report distinct keys, duplicate rate and
//	        key-bit entropy estimates — the properties that matter to a
//	        hash table
//	replay  insert the first n items into a chosen scheme on the
//	        simulated machine and report per-op simulated costs
package main

import (
	"flag"
	"fmt"
	"os"

	"grouphash/internal/harness"
	"grouphash/internal/memsim"
	"grouphash/internal/trace"
)

func main() {
	name := flag.String("trace", "randomnum", "trace: randomnum, bagofwords, fingerprint")
	n := flag.Uint64("n", 1000000, "number of items")
	mode := flag.String("mode", "stats", "dump, stats or replay")
	seed := flag.Int64("seed", 1, "generator seed")
	scheme := flag.String("scheme", "group", "replay target: group, linear-L, pfht-L, path-L, ...")
	flag.Parse()

	tr := trace.ByName(*name, *seed)
	if tr == nil {
		fmt.Fprintf(os.Stderr, "ghtrace: unknown trace %q\n", *name)
		os.Exit(2)
	}

	switch *mode {
	case "dump":
		for i := uint64(0); i < *n; i++ {
			it := tr.Next()
			fmt.Printf("%d %d %d\n", it.Key.Lo, it.Key.Hi, it.Value)
		}
	case "stats":
		seen := make(map[[2]uint64]bool, *n)
		dups := uint64(0)
		var onesLo [64]uint64
		for i := uint64(0); i < *n; i++ {
			it := tr.Next()
			id := [2]uint64{it.Key.Lo, it.Key.Hi}
			if seen[id] {
				dups++
			} else {
				seen[id] = true
			}
			for b := 0; b < 64; b++ {
				if it.Key.Lo&(1<<b) != 0 {
					onesLo[b]++
				}
			}
		}
		fmt.Printf("trace      %s (key size %d bytes)\n", tr.Name(), tr.KeyBytes())
		fmt.Printf("items      %d\n", *n)
		fmt.Printf("distinct   %d\n", uint64(len(seen)))
		fmt.Printf("duplicates %d (%.4f%%)\n", dups, float64(dups)/float64(*n)*100)
		// Count low-word bits that carry entropy (fraction of ones in
		// (5%, 95%)): uniform keys use most bits; structured keys
		// (doc<<32|word) use fewer.
		active := 0
		for b := 0; b < 64; b++ {
			f := float64(onesLo[b]) / float64(*n)
			if f > 0.05 && f < 0.95 {
				active++
			}
		}
		fmt.Printf("active key bits (low word): %d / 64\n", active)
	case "replay":
		cells := uint64(1)
		for cells < *n*2 {
			cells <<= 1
		}
		cfg := harness.BuildConfig{
			Kind: harness.Kind(*scheme), TotalCells: cells,
			KeyBytes: tr.KeyBytes(), Seed: uint64(*seed),
		}
		mem := memsim.New(memsim.Config{Size: harness.RegionBytes(cfg), Seed: *seed})
		tab := harness.Build(mem, cfg)
		before := mem.Counters()
		var inserted, failed uint64
		for i := uint64(0); i < *n; i++ {
			it := tr.Next()
			if tab.Insert(it.Key, it.Value) == nil {
				inserted++
			} else {
				failed++
			}
		}
		d := mem.Counters().Sub(before)
		fmt.Printf("replayed %d items into %s (%d cells): %d inserted, %d failed\n",
			*n, tab.Name(), cells, inserted, failed)
		fmt.Printf("simulated: %.2f ms total, %.0f ns/op, %.2f L3 misses/op, %.2f flushes/op\n",
			d.ClockNs/1e6, d.ClockNs/float64(*n),
			float64(d.L3Misses)/float64(*n), float64(d.Flushes)/float64(*n))
		fmt.Printf("final load factor: %.3f\n", tab.LoadFactor())
	default:
		fmt.Fprintf(os.Stderr, "ghtrace: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
