package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"grouphash"
	"grouphash/internal/harness"
	"grouphash/internal/layout"
	"grouphash/internal/oplog"
	"grouphash/internal/server"
	"grouphash/internal/wire"
)

// The batch experiment measures what end-to-end batching buys: acked
// throughput through a real server over loopback TCP when the same
// operations travel as pipelined single frames (the server coalesces
// them transparently) versus explicit OpBatch frames of 1, 8, 64 and
// 256 sub-ops. Every shape keeps the same number of operations in
// flight per connection, so the comparison isolates framing and apply
// shape from pipelining depth. Each row also reports the two write
// amplification counters batching amortises — oplog Append calls
// (lock acquisitions + group-commit staging) and count-word persist
// barriers — and the process-wide allocation rate over the measured
// phase, which the pooled serving loop is required to hold near zero.

// batchRow is one (workload, shape) cell of the batch experiment.
type batchRow struct {
	Workload string  `json:"workload"` // get, put, mixed
	Shape    string  `json:"shape"`    // "single-pipelined" or "batch-frames"
	Batch    int     `json:"batch"`    // sub-ops per OpBatch frame (0 = single frames)
	Conns    int     `json:"conns"`
	Ops      int     `json:"ops"` // measured acked operations
	WallMs   float64 `json:"wall_ms"`
	KopsSec  float64 `json:"kops_per_sec"`
	// Speedup vs the same workload's single-pipelined baseline (1.0
	// for the baseline row itself).
	Speedup float64 `json:"speedup_vs_single"`
	// Process-wide heap allocations per acked op over the measured
	// phase (server + allocation-free clients in one process, after a
	// warmup phase and a forced GC). The steady-state serving loop is
	// pooled, so this should stay well below one allocation per op.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Durability write amplification, per thousand acked ops: oplog
	// Append/AppendBatch calls and table count-word persists. Both
	// drop as runs lengthen; zero for the pure-get workload.
	OplogAppendsPerKop  float64 `json:"oplog_appends_per_kop"`
	CountPersistsPerKop float64 `json:"count_persists_per_kop"`
}

// batchBurst is the number of operations every shape keeps in flight
// per connection: the baseline pipelines batchBurst single frames per
// flush, and frame shapes send batchBurst/B OpBatch frames per flush.
const batchBurst = 256

// batchKeyspan is the per-connection preloaded key range gets cycle
// over (always hitting); puts target fresh keys beyond it, so every
// put is a genuine insert that moves the count word — the persist the
// stripe-grouped apply amortises.
const batchKeyspan = 4096

// batchWorker drives one raw connection with reused buffers: the
// request byte buffer, the sub-op slice and the response slice are
// allocated once, so the client side contributes (near) nothing to the
// measured allocation rate.
type batchWorker struct {
	bw    *bufio.Writer
	br    *bufio.Reader
	buf   []byte
	subs  []wire.Request
	resps []wire.Response
	base  uint64 // first key of this connection's range (exclusive, +1)
	next  uint64 // rotating get cursor into [1, batchKeyspan]
	fresh uint64 // monotonic put cursor beyond the preloaded span
}

func newBatchWorker(conn net.Conn, base uint64) *batchWorker {
	return &batchWorker{
		bw:    bufio.NewWriterSize(conn, 64<<10),
		br:    bufio.NewReaderSize(conn, 64<<10),
		buf:   make([]byte, 0, batchBurst*32),
		subs:  make([]wire.Request, batchBurst),
		resps: make([]wire.Response, batchBurst),
		base:  base,
	}
}

// run acks ops operations in bursts of batchBurst: fill the burst for
// the workload, ship it as single frames (frame == 0) or OpBatch
// frames of frame sub-ops, read every response back, repeat.
func (w *batchWorker) run(ops int, workload string, frame int) {
	for done := 0; done < ops; done += batchBurst {
		for j := range w.subs {
			op := byte(wire.OpPut)
			switch workload {
			case "get":
				op = wire.OpGet
			case "mixed":
				if j&1 == 0 {
					op = wire.OpGet
				}
			}
			var k uint64
			if op == wire.OpGet {
				k = w.base + w.next%batchKeyspan + 1
				w.next++
			} else {
				k = w.base + batchKeyspan + w.fresh + 1 // fresh insert
				w.fresh++
			}
			w.subs[j] = wire.Request{Op: op, Key: layout.Key{Lo: k, Hi: k * 0x9e3779b97f4a7c15}, Value: k}
		}
		w.buf = w.buf[:0]
		if frame == 0 {
			for j := range w.subs {
				w.buf = wire.AppendRequest(w.buf, w.subs[j])
			}
		} else {
			for off := 0; off < len(w.subs); off += frame {
				end := min(off+frame, len(w.subs))
				var err error
				if w.buf, err = wire.AppendBatchRequest(w.buf, w.subs[off:end]); err != nil {
					panic(err)
				}
			}
		}
		if _, err := w.bw.Write(w.buf); err != nil {
			panic(err)
		}
		if err := w.bw.Flush(); err != nil {
			panic(err)
		}
		if frame == 0 {
			for j := 0; j < len(w.subs); j++ {
				resp, err := wire.ReadResponse(w.br)
				if err != nil {
					panic(err)
				}
				if resp.Status != wire.StatusOK {
					panic(fmt.Sprintf("batch worker: status %d", resp.Status))
				}
			}
		} else {
			for off := 0; off < len(w.subs); off += frame {
				end := min(off+frame, len(w.subs))
				if err := wire.ReadBatchResponses(w.br, w.resps[off:end]); err != nil {
					panic(err)
				}
				for j := off; j < end; j++ {
					if w.resps[j].Status != wire.StatusOK {
						panic(fmt.Sprintf("batch worker: status %d", w.resps[j].Status))
					}
				}
			}
		}
	}
}

// batchCell runs one cell: a fresh oplog-backed server, a preloaded
// keyspace, a warmup phase on the same connections, then a measured
// phase bracketed by GC + MemStats and counter snapshots. noCoalesce
// reverts the server to per-op apply — the pre-batching baseline.
func batchCell(workload string, conns, frame, warmOps, ops int, noCoalesce bool) batchRow {
	dir, err := os.MkdirTemp("", "ghbench-batch-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	st, err := grouphash.New(grouphash.Options{Capacity: 1 << 19, Concurrent: true})
	if err != nil {
		panic(err)
	}
	// Preload the get key range directly through the façade, sized so
	// that preload plus every fresh measured insert stays well below
	// the expansion threshold: the measured phase never migrates.
	for c := 0; c < conns; c++ {
		base := uint64(c+1) << 40
		for n := uint64(1); n <= batchKeyspan; n++ {
			k := base + n
			if err := st.Put(layout.Key{Lo: k, Hi: k * 0x9e3779b97f4a7c15}, k); err != nil {
				panic(err)
			}
		}
	}
	lg, err := oplog.OpenConfig(filepath.Join(dir, "oplog"), 1, oplog.Config{
		SyncEvery: 100 * time.Microsecond, SyncBytes: 64 << 10, PreallocBytes: 4 << 20})
	if err != nil {
		panic(err)
	}
	srv, err := server.New(server.Config{Store: st, Oplog: lg, DisableCoalescing: noCoalesce})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	perConn := ops / conns
	var warm, wg sync.WaitGroup
	warm.Add(conns)
	wg.Add(conns)
	gate := make(chan struct{})
	for c := 0; c < conns; c++ {
		go func(c int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
			if err != nil {
				panic(err)
			}
			defer conn.Close()
			w := newBatchWorker(conn, uint64(c+1)<<40)
			w.run(warmOps/conns, workload, frame)
			warm.Done()
			<-gate
			w.run(perConn, workload, frame)
		}(c)
	}
	warm.Wait()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	appends0, persists0 := lg.Appends(), st.CountPersists()
	start := time.Now()
	close(gate)
	wg.Wait()
	wall := float64(time.Since(start).Nanoseconds()) / 1e6
	runtime.ReadMemStats(&m1)
	appends, persists := lg.Appends()-appends0, st.CountPersists()-persists0

	total := conns * perConn
	shape := "batch-frames"
	if frame == 0 {
		shape = "single-coalesced"
		if noCoalesce {
			shape = "single-unbatched"
		}
	}
	row := batchRow{
		Workload: workload, Shape: shape, Batch: frame, Conns: conns, Ops: total,
		WallMs: wall, KopsSec: float64(total) / wall,
		AllocsPerOp:         float64(m1.Mallocs-m0.Mallocs) / float64(total),
		OplogAppendsPerKop:  float64(appends) / (float64(total) / 1000),
		CountPersistsPerKop: float64(persists) / (float64(total) / 1000),
	}
	if err := srv.Drain(); err != nil {
		panic(err)
	}
	<-serveDone
	return row
}

// runBatchExperiment sweeps workload × frame shape, best of three per
// cell (throughput decides; the counter ratios of the winning run are
// kept), and folds every row into the JSON report. The speedup
// reference of each workload is the single-op pipelined baseline with
// coalescing disabled — the pre-batching server's per-op apply and
// per-op oplog append. The single-coalesced row shows what the
// transparent half of the batching buys on its own; explicit frames
// must then also beat that strong baseline, not just the per-op one.
func runBatchExperiment(w io.Writer, scale harness.Scale, report *jsonReport) {
	ops := scale.Ops
	if ops > 262_144 {
		ops = 262_144
	}
	if ops < 131_072 {
		ops = 131_072 // short runs drown the speedup ratios in startup noise
	}
	const conns = 16
	ops = (ops / (conns * batchBurst)) * conns * batchBurst // whole bursts per connection
	warm := conns * batchBurst * 4

	shapes := []struct {
		label      string
		frame      int
		noCoalesce bool
	}{
		{"single-unbatched", 0, true}, // pre-batching baseline: per-op apply + append
		{"single-coalesced", 0, false},
		{"batch=1", 1, false},
		{"batch=8", 8, false},
		{"batch=64", 64, false},
		{"batch=256", 256, false},
	}
	for _, workload := range []string{"get", "put", "mixed"} {
		fmt.Fprintf(w, "Batched throughput, %s workload (loopback TCP, %d conns, %d ops in flight per conn, adaptive oplog):\n",
			workload, conns, batchBurst)
		var baseline float64
		for _, sh := range shapes {
			// Best of five: each cell is a fresh server and a fraction
			// of a second of wall time, so scheduler noise dominates a
			// single run; the fastest is the honest capability number.
			var row batchRow
			for rep := 0; rep < 5; rep++ {
				r := batchCell(workload, conns, sh.frame, warm, ops, sh.noCoalesce)
				if rep == 0 || r.KopsSec > row.KopsSec {
					row = r
				}
			}
			if baseline == 0 {
				baseline = row.KopsSec
			}
			row.Speedup = row.KopsSec / baseline
			fmt.Fprintf(w, "  %-16s %8d ops  %8.1f ms  %8.1f kops/s  speedup %.2fx  allocs/op %6.3f  appends/kop %7.2f  persists/kop %7.2f\n",
				sh.label, row.Ops, row.WallMs, row.KopsSec, row.Speedup,
				row.AllocsPerOp, row.OplogAppendsPerKop, row.CountPersistsPerKop)
			report.BatchThroughput = append(report.BatchThroughput, row)
		}
	}
}
