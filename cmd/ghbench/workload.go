package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"time"

	"grouphash/internal/engine"
	"grouphash/internal/harness"
	"grouphash/internal/loadgen"
	"grouphash/internal/oplog"
	"grouphash/internal/server"
	"grouphash/internal/trace"
)

// The workload experiment measures how the serving stack's throughput
// and latency respond to workload SHAPE, everything else held fixed:
// the same flagship engine, oplog, connection count and burst framing
// serve a uniform key chooser, the paper-standard Zipfian θ=0.99, a
// flash crowd (a ~30% traffic spike onto one hot key mid-run), and a
// four-tenant split of the same skewed load. Shapes come from
// internal/trace.Mix and are driven by internal/loadgen — the exact
// generator behind cmd/ghload, so any row here is reproducible from
// the command line with the flag settings the row records.

// workloadRow is one shape of the workload experiment.
type workloadRow struct {
	Shape   string  `json:"shape"` // uniform, zipf, flash-crowd, zipf-tenants
	Engine  string  `json:"engine"`
	Theta   float64 `json:"zipf_theta"`
	Tenants int     `json:"tenants"`
	// Flash is the flash-crowd peak probability (0 = no crowd).
	Flash   float64 `json:"flash_peak"`
	Conns   int     `json:"conns"`
	Depth   int     `json:"depth"` // wire ops per burst
	Batch   int     `json:"batch"` // sub-ops per OpBatch frame
	Records uint64  `json:"records_per_tenant"`
	// Steps counts logical workload steps; Acked the wire operations
	// the server acknowledged (RMW and multi-chunk values fan one step
	// into several wire ops).
	Steps   uint64  `json:"steps"`
	Acked   uint64  `json:"acked_ops"`
	WallMs  float64 `json:"wall_ms"`
	KopsSec float64 `json:"kops_per_sec"`
	// Burst round-trip latency (one Depth-op burst over loopback).
	BurstP50Us float64 `json:"burst_p50_us"`
	BurstP99Us float64 `json:"burst_p99_us"`
}

// workloadCell runs one shape against a fresh flagship server with an
// adaptive oplog: preload the tenant keyspace, then drive the mix and
// report acked throughput and burst latency.
func workloadCell(shape string, mix trace.MixConfig, conns, depth, batch int, ops uint64) workloadRow {
	dir, err := os.MkdirTemp("", "ghbench-workload-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	eng, err := engine.New(engine.Spec{Name: "grouphash", Capacity: 1 << 19})
	if err != nil {
		panic(err)
	}
	lg, err := oplog.OpenConfig(filepath.Join(dir, "oplog"), 1, oplog.Config{
		SyncEvery: 100 * time.Microsecond, SyncBytes: 64 << 10, PreallocBytes: 4 << 20})
	if err != nil {
		panic(err)
	}
	srv, err := server.New(server.Config{Engine: eng, Oplog: lg})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	cfg := loadgen.Config{
		Addr:  ln.Addr().String(),
		Mix:   mix,
		Ops:   ops,
		Conns: conns,
		Depth: depth,
		Batch: batch,
	}
	if _, err := loadgen.Preload(cfg); err != nil {
		panic(err)
	}
	res, err := loadgen.Run(cfg)
	if err != nil {
		panic(err)
	}
	if res.Drained {
		panic("workload cell: server drained mid-run")
	}
	wall := float64(res.Wall.Nanoseconds()) / 1e6
	row := workloadRow{
		Shape: shape, Engine: "grouphash",
		Theta: mix.Theta, Tenants: mix.Tenants,
		Conns: conns, Depth: depth, Batch: batch, Records: mix.Records,
		Steps: res.Steps, Acked: res.Acked,
		WallMs: wall, KopsSec: float64(res.Acked) / wall,
		BurstP50Us: res.RTT.Quantile(0.50) / 1e3,
		BurstP99Us: res.RTT.Quantile(0.99) / 1e3,
	}
	if mix.Flash != nil {
		row.Flash = mix.Flash.Peak
	}
	if err := srv.Drain(); err != nil {
		panic(err)
	}
	<-serveDone
	return row
}

// runWorkloadExperiment sweeps the four shapes, best of three runs per
// shape (BENCH_PR10's workload table).
func runWorkloadExperiment(w io.Writer, scale harness.Scale, report *jsonReport) {
	const (
		conns   = 8
		depth   = 128
		batch   = 128
		records = uint64(1) << 16
	)
	ops := uint64(scale.Ops)
	if ops > 262_144 {
		ops = 262_144
	}
	if ops < 131_072 {
		ops = 131_072
	}
	perConn := ops / conns

	base := trace.MixConfig{
		Records:    records,
		Tenants:    1,
		ReadFrac:   0.90,
		UpdateFrac: 0.10,
		Seed:       42,
	}
	shapes := []struct {
		name string
		mut  func(*trace.MixConfig)
	}{
		{"uniform", func(m *trace.MixConfig) { m.Theta = 0 }},
		{"zipf", func(m *trace.MixConfig) { m.Theta = 0.99 }},
		{"flash-crowd", func(m *trace.MixConfig) {
			m.Theta = 0.99
			// Per-connection op counts: ramp to a 30% hot-key share over
			// the second quarter of the run, hold through the third.
			m.Flash = &trace.FlashCrowd{
				Start: perConn / 4, Ramp: perConn / 8, Hold: perConn / 4, Peak: 0.30,
			}
		}},
		{"zipf-tenants", func(m *trace.MixConfig) {
			m.Theta = 0.99
			m.Tenants = 4
		}},
	}

	fmt.Fprintf(w, "Workload shapes on the flagship (loopback TCP, %d conns, %d-op bursts as OpBatch frames, adaptive oplog):\n",
		conns, depth)
	for _, s := range shapes {
		mix := base
		s.mut(&mix)
		var row workloadRow
		for rep := 0; rep < 3; rep++ {
			r := workloadCell(s.name, mix, conns, depth, batch, ops)
			if rep == 0 || r.KopsSec > row.KopsSec {
				row = r
			}
		}
		crowd := ""
		if row.Flash > 0 {
			crowd = fmt.Sprintf("  flash peak %.0f%%", row.Flash*100)
		}
		fmt.Fprintf(w, "  %-12s θ=%-4v tenants=%d  %8d acked  %8.1f ms  %8.1f kops/s  burst p50=%.0fµs p99=%.0fµs%s\n",
			row.Shape, row.Theta, row.Tenants, row.Acked, row.WallMs, row.KopsSec,
			row.BurstP50Us, row.BurstP99Us, crowd)
		report.Workload = append(report.Workload, row)
	}
}
