package main

import (
	"encoding/json"
	"os"

	"grouphash/internal/harness"
)

// jsonLatencyRow is one (scheme, trace, load-factor, phase) cell of a
// latency experiment, flattened to the per-op figure metrics: simulated
// ns, L3 misses, clflushes and newly-written NVM words per request.
type jsonLatencyRow struct {
	Experiment string  `json:"experiment"`
	Scheme     string  `json:"scheme"`
	Trace      string  `json:"trace"`
	LoadFactor float64 `json:"load_factor"`
	Phase      string  `json:"phase"`
	SimNsOp    float64 `json:"sim_ns_per_op"`
	L3MissOp   float64 `json:"l3_miss_per_op"`
	FlushOp    float64 `json:"flush_per_op"`
	NVMWordsOp float64 `json:"nvm_words_per_op"`
}

// jsonUtilRow is one space-utilisation measurement (Figure 7).
type jsonUtilRow struct {
	Experiment  string  `json:"experiment"`
	Scheme      string  `json:"scheme"`
	Trace       string  `json:"trace"`
	UtilPercent float64 `json:"util_percent"`
	Inserted    uint64  `json:"inserted"`
	Capacity    uint64  `json:"capacity"`
}

// jsonReport is the schema of the -json output file. One file holds
// every experiment the invocation ran, so a single
// "ghbench -exp all -json BENCH_default.json" captures all figure
// metrics of a scale in machine-readable form.
type jsonReport struct {
	Scale     string           `json:"scale"`
	Cells     uint64           `json:"random_num_cells"`
	OpsPhase  int              `json:"ops_per_phase"`
	Latency   []jsonLatencyRow `json:"latency,omitempty"`
	SpaceUtil []jsonUtilRow    `json:"space_util,omitempty"`
	// Expansion benchmarks (native backend, real wall-clock): the
	// rehash worker-count sweep and the per-write stall distribution
	// under online expansion. See cmd/ghbench/expand.go.
	ExpandRehash []expandRehashRow `json:"expand_rehash,omitempty"`
	ExpandStall  []expandStallRow  `json:"expand_stall,omitempty"`
	// Fingerprint-filtered vs unfiltered lookup latency (native
	// backend, real wall-clock). See cmd/ghbench/probe.go.
	Probe []probeRow `json:"probe,omitempty"`
	// Operation-log cost: acked-write throughput through the network
	// server with and without the oplog. See cmd/ghbench/oplog.go.
	OplogThroughput []oplogThroughputRow `json:"oplog_throughput,omitempty"`
	// Observability cost: acked-write throughput with per-request
	// instrumentation off and on. See cmd/ghbench/metrics.go.
	MetricsOverhead []metricsOverheadRow `json:"metrics_overhead,omitempty"`
	// End-to-end batching: single-pipelined frames (server-coalesced)
	// vs explicit OpBatch frames across batch sizes, with allocation
	// and write-amplification counters. See cmd/ghbench/batch.go.
	BatchThroughput []batchRow `json:"batch_throughput,omitempty"`
	// Engine shoot-out: every scheme behind the internal/engine seam
	// serving the same wire workloads. See cmd/ghbench/engines.go.
	Engines []engineRow `json:"engines,omitempty"`
	// Workload shapes: uniform vs Zipfian vs flash-crowd vs
	// multi-tenant load on the flagship. See cmd/ghbench/workload.go.
	Workload []workloadRow `json:"workload,omitempty"`
}

// addLatency flattens LatencyResult rows (insert/query/delete phases)
// into the report.
func (r *jsonReport) addLatency(experiment string, rows []harness.LatencyResult) {
	for _, row := range rows {
		for _, ph := range []struct {
			name string
			c    harness.OpCost
		}{{"insert", row.Insert}, {"query", row.Query}, {"delete", row.Delete}} {
			if ph.c.Count == 0 {
				continue
			}
			r.Latency = append(r.Latency, jsonLatencyRow{
				Experiment: experiment,
				Scheme:     row.Scheme,
				Trace:      row.Trace,
				LoadFactor: row.LoadFactor,
				Phase:      ph.name,
				SimNsOp:    ph.c.AvgLatencyNs,
				L3MissOp:   ph.c.AvgL3Misses,
				FlushOp:    ph.c.AvgFlushes,
				NVMWordsOp: ph.c.AvgNVMWords,
			})
		}
	}
}

// addSpaceUtil folds Figure 7 utilisation results into the report.
func (r *jsonReport) addSpaceUtil(experiment string, rows []harness.SpaceUtilResult) {
	for _, row := range rows {
		r.SpaceUtil = append(r.SpaceUtil, jsonUtilRow{
			Experiment:  experiment,
			Scheme:      row.Scheme,
			Trace:       row.Trace,
			UtilPercent: row.Utilization * 100,
			Inserted:    row.Inserted,
			Capacity:    row.Capacity,
		})
	}
}

// write marshals the report to path (conventionally BENCH_<scale>.json).
func (r *jsonReport) write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
