package main

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"grouphash/internal/core"
	"grouphash/internal/harness"
	"grouphash/internal/layout"
	"grouphash/internal/native"
)

// The expansion experiments run on the NATIVE backend (real wall-clock
// time, not simulated ns): expansion throughput is dominated by the
// memory bandwidth of the rehash and by lock handoffs, neither of which
// the single-threaded simulator can exhibit.

// expandRehashRow is one full-table rehash measurement: the same
// expansion executed sequentially and with the parallel group-range
// migration, on identical table contents.
type expandRehashRow struct {
	Mode    string  `json:"mode"`    // "sequential" or "parallel-<P>"
	Cells   uint64  `json:"cells"`   // level-1 cells before expansion
	Items   uint64  `json:"items"`   // live items migrated
	WallMs  float64 `json:"wall_ms"` // best-of-3 wall time
	Speedup float64 `json:"speedup"` // vs sequential (1.0 for the sequential row)
}

// expandStallRow summarises per-write latency while online expansions
// run underneath a write-heavy workload — the "how long does a write
// stall when it collides with a migration" question.
type expandStallRow struct {
	Writers    int     `json:"writers"`
	Ops        int     `json:"ops"`
	Expansions uint64  `json:"expansions"`
	FullErrors uint64  `json:"full_errors"`
	P50us      float64 `json:"p50_us"`
	P90us      float64 `json:"p90_us"`
	P99us      float64 `json:"p99_us"`
	MaxUs      float64 `json:"max_us"`
	WallMs     float64 `json:"wall_ms"`
}

// expandRehashBench builds a table at ~70% of the load-factor trigger
// and times one full doubling, sequential vs parallel.
func expandRehashBench(l1 uint64, seed uint64) (rows []expandRehashRow) {
	items := l1 * 2 * 7 / 10 // ~70% of the two-level capacity
	build := func() *core.Table {
		mem := native.New(1 << 16)
		tab, err := core.Create(mem, core.Options{Cells: l1, GroupSize: 256, Seed: seed})
		if err != nil {
			panic(err)
		}
		for i := uint64(1); i <= items; i++ {
			if err := tab.InsertAutoExpand(layout.Key{Lo: i * 0x9e3779b97f4a7c15}, i); err != nil {
				panic(err)
			}
		}
		return tab
	}
	procs := runtime.GOMAXPROCS(0)
	measure := func(p int) float64 {
		old := runtime.GOMAXPROCS(p)
		defer runtime.GOMAXPROCS(old)
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			tab := build()
			start := time.Now()
			if err := tab.Expand(); err != nil {
				panic(err)
			}
			ms := float64(time.Since(start).Nanoseconds()) / 1e6
			if rep == 0 || ms < best {
				best = ms
			}
		}
		return best
	}
	seq := measure(1) // GOMAXPROCS=1 forces the sequential path
	rows = append(rows, expandRehashRow{Mode: "sequential", Cells: l1, Items: items, WallMs: seq, Speedup: 1})
	par := measure(procs)
	rows = append(rows, expandRehashRow{
		Mode: fmt.Sprintf("parallel-%d", procs), Cells: l1, Items: items,
		WallMs: par, Speedup: seq / par,
	})
	return rows
}

// expandStallBench drives a write-heavy load through the concurrent
// store from a tiny initial table, so the workload crosses many online
// expansions, and reports the per-write latency distribution.
func expandStallBench(writers, ops int, seed uint64) expandStallRow {
	mem := native.New(1 << 16)
	tab, err := core.Create(mem, core.Options{Cells: 1 << 10, GroupSize: 64, Seed: seed})
	if err != nil {
		panic(err)
	}
	c := core.NewConcurrent(tab, 0)
	c.EnableOnlineExpand()

	perWorker := ops / writers
	lats := make([][]float64, writers) // per-op microseconds
	var fullErrs uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]float64, 0, perWorker)
			base := uint64(w+1) << 40
			for i := uint64(1); i <= uint64(perWorker); i++ {
				t0 := time.Now()
				err := c.Insert(layout.Key{Lo: base + i}, i)
				lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e3)
				if err != nil {
					mu.Lock()
					fullErrs++
					mu.Unlock()
				}
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	wall := float64(time.Since(start).Nanoseconds()) / 1e6
	c.WaitExpansion()

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	return expandStallRow{
		Writers: writers, Ops: writers * perWorker,
		Expansions: c.Expansions(), FullErrors: fullErrs,
		P50us: q(0.50), P90us: q(0.90), P99us: q(0.99), MaxUs: all[len(all)-1],
		WallMs: wall,
	}
}

// runExpandExperiment executes both expansion benchmarks, prints them,
// and folds the rows into the JSON report.
func runExpandExperiment(w io.Writer, scale harness.Scale, report *jsonReport) {
	l1 := scale.RandomNumCells / 2
	if l1 < 1<<12 {
		l1 = 1 << 12
	}
	rehash := expandRehashBench(l1, uint64(scale.Seed))
	fmt.Fprintf(w, "Expansion rehash (native backend, %d level-1 cells, %d items):\n", rehash[0].Cells, rehash[0].Items)
	for _, r := range rehash {
		fmt.Fprintf(w, "  %-12s %8.2f ms   speedup %.2fx\n", r.Mode, r.WallMs, r.Speedup)
	}

	ops := scale.Ops
	if ops > 400_000 {
		ops = 400_000
	}
	if ops < 40_000 {
		ops = 40_000
	}
	stall := expandStallBench(4, ops, uint64(scale.Seed))
	fmt.Fprintf(w, "\nOnline expansion write stalls (%d writers, %d inserts, 1K-cell start):\n",
		stall.Writers, stall.Ops)
	fmt.Fprintf(w, "  expansions=%d full_errors=%d wall=%.1f ms\n",
		stall.Expansions, stall.FullErrors, stall.WallMs)
	fmt.Fprintf(w, "  per-write latency: p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus\n",
		stall.P50us, stall.P90us, stall.P99us, stall.MaxUs)

	report.ExpandRehash = rehash
	report.ExpandStall = append(report.ExpandStall, stall)
}
