package main

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"grouphash/internal/core"
	"grouphash/internal/harness"
	"grouphash/internal/layout"
	"grouphash/internal/native"
)

// The expansion experiments run on the NATIVE backend (real wall-clock
// time, not simulated ns): expansion throughput is dominated by the
// memory bandwidth of the rehash and by lock handoffs, neither of which
// the single-threaded simulator can exhibit.

// expandRehashRow is one full-table rehash measurement: the same
// migration executed with an explicit worker count, on identical table
// contents. Workers, GOMAXPROCS and the physical CPU count are all
// recorded so a "parallel speedup" can never again be mistaken for a
// hardware property the machine does not have (the PR3 sweep compared
// "sequential" against "parallel-1" on a 1-CPU box — the same code
// path measured twice).
type expandRehashRow struct {
	Mode       string  `json:"mode"`    // "sequential" or "workers-<N>"
	Workers    int     `json:"workers"` // rehash pool size (1 = sequential path)
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Cells      uint64  `json:"cells"`   // level-1 cells before expansion
	Items      uint64  `json:"items"`   // live items migrated
	WallMs     float64 `json:"wall_ms"` // best-of-N wall time
	Speedup    float64 `json:"speedup"` // vs the workers-1 row (1.0 there)
}

// expandStallRow summarises per-write latency while online expansions
// run underneath a write-heavy workload — the "how long does a write
// stall when it collides with a migration" question.
type expandStallRow struct {
	Writers    int     `json:"writers"`
	Ops        int     `json:"ops"`
	Expansions uint64  `json:"expansions"`
	FullErrors uint64  `json:"full_errors"`
	P50us      float64 `json:"p50_us"`
	P90us      float64 `json:"p90_us"`
	P99us      float64 `json:"p99_us"`
	MaxUs      float64 `json:"max_us"`
	WallMs     float64 `json:"wall_ms"`
}

// rehashWorkerSweep returns the worker counts the rehash benchmark
// measures: 1 (the sequential path) through GOMAXPROCS, padded with
// forced 2- and 4-worker pools when GOMAXPROCS is smaller — on a
// machine with fewer cores those rows measure pure pool overhead
// (goroutine handoff with no parallel hardware underneath), which is
// exactly the number needed to interpret a flat sweep.
func rehashWorkerSweep() []int {
	procs := runtime.GOMAXPROCS(0)
	var ws []int
	for n := 1; n <= procs; n *= 2 {
		ws = append(ws, n)
		if n < procs && n*2 > procs {
			ws = append(ws, procs)
		}
	}
	for _, forced := range []int{2, 4} {
		if forced > procs {
			ws = append(ws, forced)
		}
	}
	return ws
}

// expandRehashBench builds ONE table at ~70% of the load-factor
// trigger and times uncommitted full-table rehashes across the worker
// sweep (best of reps each). Reusing one table keeps the 10M+-key row
// affordable and guarantees every worker count migrates identical
// contents.
func expandRehashBench(l1 uint64, seed uint64, reps int) (rows []expandRehashRow) {
	items := l1 * 2 * 7 / 10 // ~70% of the two-level capacity
	mem := native.New(1 << 16)
	tab, err := core.Create(mem, core.Options{Cells: l1, GroupSize: 256, Seed: seed})
	if err != nil {
		panic(err)
	}
	for i := uint64(1); i <= items; i++ {
		if err := tab.InsertAutoExpand(layout.Key{Lo: i * 0x9e3779b97f4a7c15}, i); err != nil {
			panic(err)
		}
	}
	defer tab.SetRehashWorkers(0)
	var seq float64
	for _, workers := range rehashWorkerSweep() {
		tab.SetRehashWorkers(workers)
		best := 0.0
		for rep := 0; rep < reps; rep++ {
			d, err := tab.RehashBench()
			if err != nil {
				panic(err)
			}
			if ms := float64(d.Nanoseconds()) / 1e6; rep == 0 || ms < best {
				best = ms
			}
		}
		mode := fmt.Sprintf("workers-%d", workers)
		if workers == 1 {
			mode, seq = "sequential", best
		}
		rows = append(rows, expandRehashRow{
			Mode: mode, Workers: workers,
			GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
			Cells: l1, Items: items, WallMs: best, Speedup: seq / best,
		})
	}
	return rows
}

// expandStallBench drives a write-heavy load through the concurrent
// store from a tiny initial table, so the workload crosses many online
// expansions, and reports the per-write latency distribution.
func expandStallBench(writers, ops int, seed uint64) expandStallRow {
	mem := native.New(1 << 16)
	tab, err := core.Create(mem, core.Options{Cells: 1 << 10, GroupSize: 64, Seed: seed})
	if err != nil {
		panic(err)
	}
	c := core.NewConcurrent(tab, 0)
	c.EnableOnlineExpand()

	perWorker := ops / writers
	lats := make([][]float64, writers) // per-op microseconds
	var fullErrs uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]float64, 0, perWorker)
			base := uint64(w+1) << 40
			for i := uint64(1); i <= uint64(perWorker); i++ {
				t0 := time.Now()
				err := c.Insert(layout.Key{Lo: base + i}, i)
				lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e3)
				if err != nil {
					mu.Lock()
					fullErrs++
					mu.Unlock()
				}
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	wall := float64(time.Since(start).Nanoseconds()) / 1e6
	c.WaitExpansion()

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	return expandStallRow{
		Writers: writers, Ops: writers * perWorker,
		Expansions: c.Expansions(), FullErrors: fullErrs,
		P50us: q(0.50), P90us: q(0.90), P99us: q(0.99), MaxUs: all[len(all)-1],
		WallMs: wall,
	}
}

// runExpandExperiment executes both expansion benchmarks, prints them,
// and folds the rows into the JSON report.
func runExpandExperiment(w io.Writer, scale harness.Scale, report *jsonReport) {
	l1 := scale.RandomNumCells / 2
	if l1 < 1<<12 {
		l1 = 1 << 12
	}
	rehash := expandRehashBench(l1, uint64(scale.Seed), 3)
	if scale.Name != "test" {
		// The worker sweep again at 10M+ live items (2^23 level-1 cells
		// at 70% two-level fill ⇒ ~11.7M keys): big enough that the
		// migration is memory-bound rather than cache-resident, which is
		// where a parallel claim must prove itself.
		rehash = append(rehash, expandRehashBench(1<<23, uint64(scale.Seed), 2)...)
	}
	fmt.Fprintf(w, "Expansion rehash worker sweep (native backend, GOMAXPROCS=%d, %d CPUs):\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	for _, r := range rehash {
		fmt.Fprintf(w, "  %9d cells  %-12s %8.2f ms   speedup %.2fx\n", r.Cells, r.Mode, r.WallMs, r.Speedup)
	}

	ops := scale.Ops
	if ops > 400_000 {
		ops = 400_000
	}
	if ops < 40_000 {
		ops = 40_000
	}
	stall := expandStallBench(4, ops, uint64(scale.Seed))
	fmt.Fprintf(w, "\nOnline expansion write stalls (%d writers, %d inserts, 1K-cell start):\n",
		stall.Writers, stall.Ops)
	fmt.Fprintf(w, "  expansions=%d full_errors=%d wall=%.1f ms\n",
		stall.Expansions, stall.FullErrors, stall.WallMs)
	fmt.Fprintf(w, "  per-write latency: p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus\n",
		stall.P50us, stall.P90us, stall.P99us, stall.MaxUs)

	report.ExpandRehash = rehash
	report.ExpandStall = append(report.ExpandStall, stall)
}
