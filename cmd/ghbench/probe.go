package main

import (
	"fmt"
	"io"
	"time"

	"grouphash/internal/core"
	"grouphash/internal/harness"
	"grouphash/internal/layout"
	"grouphash/internal/native"
)

// The probe experiment measures what the DRAM fingerprint sidecar buys
// on the NATIVE backend (real wall-clock ns/op — the sidecar is a DRAM
// structure the simulator deliberately does not charge): present- and
// absent-key lookups at three load factors, filtered vs unfiltered,
// on identically-built tables.

// probeRow is one (case, load factor, filter state) lookup measurement.
type probeRow struct {
	Case         string  `json:"case"`            // "hit" or "miss"
	TargetLfPct  int     `json:"target_lf_pct"`   // requested fill
	LfPct        float64 `json:"load_factor_pct"` // achieved fill
	Fingerprints bool    `json:"fingerprints"`
	NsOp         float64 `json:"ns_per_op"`
	Speedup      float64 `json:"speedup"` // unfiltered ns / this ns (1.0 on unfiltered rows)
	FpHitsOp     float64 `json:"fp_hits_per_op"`  // cells dereferenced through the filter
	FpSkipsOp    float64 `json:"fp_skips_per_op"` // cells screened out by the filter
}

// probeBuild fills a group-256 native table toward the target load
// factor. Past ~78% a strict insert loop dies on its first full group
// (the paper's Figure-7 ceiling), so failed inserts are skipped and
// replaced by later keys; the achieved load factor is returned with
// the keys that landed.
func probeBuild(l1 uint64, seed uint64, lfPct int, fp bool) (*core.Table, []layout.Key) {
	tab, err := core.Create(native.New(1<<16), core.Options{Cells: l1, GroupSize: 256, Seed: seed})
	if err != nil {
		panic(err)
	}
	if !fp {
		tab.DisableFingerprints()
	}
	target := tab.Capacity() * uint64(lfPct) / 100
	keys := make([]layout.Key, 0, target)
	fails := 0
	for i := uint64(1); uint64(len(keys)) < target && fails < 1<<18; i++ {
		k := layout.Key{Lo: i * 0x9e3779b97f4a7c15}
		if tab.Insert(k, i) != nil {
			fails++
			continue
		}
		keys = append(keys, k)
	}
	return tab, keys
}

// probeBench measures hit and miss lookups at one load factor for one
// filter state, attributing the filter counters consumed by the timed
// loops to their rows.
func probeBench(l1 uint64, seed uint64, lfPct, ops int, fp bool) (hit, miss probeRow) {
	tab, keys := probeBuild(l1, seed, lfPct, fp)
	lf := tab.LoadFactor() * 100

	measure := func(kase string, key func(n uint64) layout.Key, wantOK bool) probeRow {
		h0, s0 := tab.FingerprintStats()
		start := time.Now()
		for n := uint64(0); n < uint64(ops); n++ {
			if _, ok := tab.Lookup(key(n)); ok != wantOK {
				panic(fmt.Sprintf("probe %s: lookup ok=%v, want %v", kase, ok, wantOK))
			}
		}
		wall := time.Since(start)
		h1, s1 := tab.FingerprintStats()
		return probeRow{
			Case: kase, TargetLfPct: lfPct, LfPct: lf, Fingerprints: fp,
			NsOp:     float64(wall.Nanoseconds()) / float64(ops),
			FpHitsOp: float64(h1-h0) / float64(ops), FpSkipsOp: float64(s1-s0) / float64(ops),
		}
	}
	hit = measure("hit", func(n uint64) layout.Key { return keys[n%uint64(len(keys))] }, true)
	// Absent keys from a disjoint index range (the odd-constant multiply
	// is a bijection, so they cannot collide with any inserted key).
	miss = measure("miss", func(n uint64) layout.Key {
		return layout.Key{Lo: (n%(1<<20) + 1<<40) * 0x9e3779b97f4a7c15}
	}, false)
	return hit, miss
}

// runProbeExperiment executes the lookup benchmark across load factors
// and filter states, prints the comparison, and folds the rows into
// the JSON report.
func runProbeExperiment(w io.Writer, scale harness.Scale, report *jsonReport) {
	l1 := scale.RandomNumCells / 2
	if l1 < 1<<15 {
		l1 = 1 << 15
	}
	ops := 2_000_000
	if scale.Name == "test" {
		ops = 100_000
	}
	fmt.Fprintf(w, "Fingerprint-filtered probes (native backend, %d level-1 cells, %d lookups/row):\n", l1, ops)
	fmt.Fprintf(w, "  %-5s %-9s %12s %12s %9s %12s\n", "case", "load", "plain ns/op", "fp ns/op", "speedup", "fp skips/op")
	for _, lfPct := range []int{50, 70, 82} {
		fpHit, fpMiss := probeBench(l1, uint64(scale.Seed), lfPct, ops, true)
		plHit, plMiss := probeBench(l1, uint64(scale.Seed), lfPct, ops, false)
		plHit.Speedup, plMiss.Speedup = 1, 1
		fpHit.Speedup = plHit.NsOp / fpHit.NsOp
		fpMiss.Speedup = plMiss.NsOp / fpMiss.NsOp
		for _, pair := range [2][2]probeRow{{plHit, fpHit}, {plMiss, fpMiss}} {
			pl, f := pair[0], pair[1]
			fmt.Fprintf(w, "  %-5s %7.1f%% %12.1f %12.1f %8.2fx %12.1f\n",
				f.Case, f.LfPct, pl.NsOp, f.NsOp, f.Speedup, f.FpSkipsOp)
			report.Probe = append(report.Probe, pl, f)
		}
	}
}
