package main

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"grouphash"
	"grouphash/internal/client"
	"grouphash/internal/harness"
	"grouphash/internal/layout"
	"grouphash/internal/server"
	"grouphash/internal/wire"
)

// The metrics experiment prices the observability layer itself: the
// per-request instrumentation (a clock read, a lock-free histogram
// observe and two byte counters) sits on the server's hot path, and
// the PR's budget says it may cost at most 5% of acked-write
// throughput. Both modes run the identical no-oplog server — the purely
// CPU-bound configuration where a hot-path regression is most visible,
// not hidden under fsync time — and differ only in Config.DisableTiming.

// metricsOverheadRow is one (mode) acked-write throughput measurement;
// Overhead is this mode's slowdown versus the uninstrumented baseline.
type metricsOverheadRow struct {
	Mode     string  `json:"mode"`  // "uninstrumented" or "instrumented"
	Conns    int     `json:"conns"` // concurrent client connections
	Batch    int     `json:"batch"` // requests per pipelined Do
	Ops      int     `json:"ops"`   // total acked writes
	WallMs   float64 `json:"wall_ms"`
	KopsSec  float64 `json:"kops_per_sec"`
	Overhead float64 `json:"overhead_vs_uninstrumented"` // 1.0 for the baseline row
}

// metricsOverheadBench acks `ops` pipelined writes through a freshly
// started (oplog-free) server with the given timing setting and
// returns the wall time. With timing on, the run ends with a real
// scrape so the measured configuration is the one operators deploy.
func metricsOverheadBench(conns, batch, ops int, timing bool) metricsOverheadRow {
	st, err := grouphash.New(grouphash.Options{Capacity: 1 << 18, Concurrent: true})
	if err != nil {
		panic(err)
	}
	srv, err := server.New(server.Config{Store: st, DisableTiming: !timing})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	perConn := ops / conns
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial(ln.Addr().String(), 2*time.Second)
			if err != nil {
				panic(err)
			}
			defer cl.Close()
			base := uint64(c+1) << 40
			reqs := make([]wire.Request, batch)
			for done := 0; done < perConn; done += batch {
				for j := range reqs {
					k := base + uint64(done+j) + 1
					reqs[j] = wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: k}, Value: k}
				}
				resps, err := cl.Do(reqs)
				if err != nil {
					panic(err)
				}
				for _, r := range resps {
					if r.Status != wire.StatusOK {
						panic(fmt.Sprintf("put status %d", r.Status))
					}
				}
			}
		}(c)
	}
	wg.Wait()
	wall := float64(time.Since(start).Nanoseconds()) / 1e6

	if timing {
		// Prove the scrape path works on the loaded server (untimed —
		// scrapes are rare next to requests).
		cl, err := client.Dial(ln.Addr().String(), 2*time.Second)
		if err != nil {
			panic(err)
		}
		if _, err := cl.ServerMetrics(); err != nil {
			panic(err)
		}
		cl.Close()
	}
	if err := srv.Drain(); err != nil {
		panic(err)
	}
	<-serveDone
	total := conns * perConn
	mode := "uninstrumented"
	if timing {
		mode = "instrumented"
	}
	return metricsOverheadRow{
		Mode: mode, Conns: conns, Batch: batch, Ops: total,
		WallMs: wall, KopsSec: float64(total) / wall,
	}
}

// runMetricsExperiment measures acked-write throughput with request
// instrumentation off and on, best-of-3 per mode to shave loopback
// scheduling noise, and folds both rows into the JSON report. The
// acceptance bar is the instrumented run within 1.05x of the baseline.
func runMetricsExperiment(w io.Writer, scale harness.Scale, report *jsonReport) {
	ops := scale.Ops
	if ops > 200_000 {
		ops = 200_000
	}
	if ops < 20_000 {
		ops = 20_000
	}
	const conns, batch, reps = 4, 64, 3
	best := func(timing bool) metricsOverheadRow {
		var b metricsOverheadRow
		for i := 0; i < reps; i++ {
			r := metricsOverheadBench(conns, batch, ops, timing)
			if i == 0 || r.KopsSec > b.KopsSec {
				b = r
			}
		}
		return b
	}
	base := best(false)
	base.Overhead = 1
	instr := best(true)
	instr.Overhead = base.KopsSec / instr.KopsSec

	fmt.Fprintf(w, "Instrumentation overhead (loopback TCP acked writes, %d conns, %d-op batches, best of %d):\n",
		conns, batch, reps)
	for _, r := range []metricsOverheadRow{base, instr} {
		fmt.Fprintf(w, "  %-14s %8d ops  %8.1f ms  %8.1f kops/s  overhead %.3fx\n",
			r.Mode, r.Ops, r.WallMs, r.KopsSec, r.Overhead)
	}
	report.MetricsOverhead = append(report.MetricsOverhead, base, instr)
}
