// Command ghbench regenerates the tables and figures of the paper's
// evaluation section (§4) on the simulated NVM machine.
//
// Usage:
//
//	ghbench [-exp all|fig2|fig5|fig6|fig7|fig8|table3|...] [-scale test|default|paper]
//	        [-csv dir] [-json BENCH_<scale>.json] [-plot]
//
// -exp accepts a comma-separated list (e.g. -exp probe,expand), so one
// invocation — and one -json file — can capture several experiments.
//
// The default scale shrinks table sizes ~16× against the paper (keeping
// them far larger than the simulated 15 MB L3, so cache behaviour and
// all qualitative conclusions carry over); -scale paper runs the exact
// §4.1 sizes and needs several GB of memory and tens of minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"grouphash/internal/harness"
	"grouphash/internal/trace"
)

// traceRandomNum keeps the import local to the repeat experiment.
func traceRandomNum(seed int64) trace.Trace { return trace.NewRandomNum(seed) }

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: all, fig2, fig5, fig6, fig7, fig8, table3, wear, ycsb, excluded, curve, repeat, expand, probe, oplog, metrics, batch, engines, workload")
	scaleName := flag.String("scale", "default", "experiment scale: test, default, paper")
	csvDir := flag.String("csv", "", "also write each experiment's data as CSV into this directory")
	plotOut := flag.Bool("plot", false, "render figures additionally as terminal bar charts")
	jsonOut := flag.String("json", "", "write figure metrics (sim-ns/op, L3miss/op, flush/op, util%) as JSON to this file (convention: BENCH_<scale>.json)")
	flag.Parse()

	writeCSV := func(name string, fn func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "ghbench: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name)
		file, err := os.Create(path)
		if err == nil {
			err = fn(file)
			if cerr := file.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghbench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	var scale harness.Scale
	switch *scaleName {
	case "test":
		scale = harness.TestScale()
	case "default":
		scale = harness.DefaultScale()
	case "paper", "full":
		scale = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "ghbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	sel := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		sel[strings.TrimSpace(e)] = true
	}
	want := func(name string) bool {
		if sel["all"] {
			// repeat and curve are opt-in only: both rerun whole figure
			// workloads several times over.
			return name != "repeat" && name != "curve"
		}
		return sel[name]
	}
	ran := 0
	w := os.Stdout
	report := jsonReport{Scale: scale.Name, Cells: scale.RandomNumCells, OpsPhase: scale.Ops}

	fmt.Fprintf(w, "group hashing reproduction — scale %q\n", scale.Name)
	fmt.Fprintf(w, "  RandomNum %d cells, Bag-of-Words %d cells, Fingerprint %d cells, %d ops/phase\n\n",
		scale.RandomNumCells, scale.BagOfWordsCells, scale.FingerprintCells, scale.Ops)

	timed := func(name string, fn func()) {
		start := time.Now()
		fn()
		fmt.Fprintf(w, "\n  [%s completed in %v]\n\n%s\n", name, time.Since(start).Round(time.Millisecond), strings.Repeat("-", 72))
		ran++
	}

	if want("fig2") {
		timed("fig2", func() {
			r := harness.Fig2(scale)
			harness.PrintFig2(w, r)
			report.addLatency("fig2", r.Rows)
			writeCSV("fig2.csv", func(f *os.File) error { return harness.WriteLatencyCSV(f, r.Rows) })
		})
	}
	if want("fig5") || want("fig6") {
		var m harness.RequestMatrix
		timed("fig5+fig6", func() {
			m = harness.Fig5and6(scale)
			if want("fig5") {
				harness.PrintFig5(w, m)
				if *plotOut {
					harness.PlotFig5(w, m)
				}
			}
			if want("fig6") {
				harness.PrintFig6(w, m)
				if *plotOut {
					harness.PlotFig6(w, m)
				}
			}
			report.addLatency("fig5_fig6", m.Rows)
			writeCSV("fig5_fig6.csv", func(f *os.File) error { return harness.WriteLatencyCSV(f, m.Rows) })
		})
	}
	if want("fig7") {
		timed("fig7", func() {
			r := harness.Fig7(scale)
			harness.PrintFig7(w, r)
			if *plotOut {
				harness.PlotFig7(w, r)
			}
			report.addSpaceUtil("fig7", r)
			writeCSV("fig7.csv", func(f *os.File) error { return harness.WriteSpaceUtilCSV(f, r) })
		})
	}
	if want("fig8") {
		timed("fig8", func() {
			r := harness.Fig8(scale)
			harness.PrintFig8(w, r)
			if *plotOut {
				harness.PlotFig8(w, r)
			}
			writeCSV("fig8.csv", func(f *os.File) error { return harness.WriteFig8CSV(f, r) })
		})
	}
	if want("table3") {
		timed("table3", func() {
			r := harness.Table3(scale)
			harness.PrintTable3(w, r)
			writeCSV("table3.csv", func(f *os.File) error { return harness.WriteRecoveryCSV(f, r) })
		})
	}
	if want("wear") {
		timed("wear", func() {
			r := harness.WearComparison(scale)
			harness.PrintWear(w, r)
			writeCSV("wear.csv", func(f *os.File) error { return harness.WriteWearCSV(f, r) })
		})
	}
	if sel["repeat"] {
		// The paper's §4.1 protocol: each result is the average of five
		// independent executions. Run the RandomNum lf-0.5 row of
		// Figure 5 that way, reporting mean ± stddev.
		timed("repeat", func() {
			var rows []harness.RepeatedLatencyResult
			for _, k := range harness.Fig5Schemes() {
				rows = append(rows, harness.RepeatLatency(harness.LatencyConfig{
					Build:      harness.BuildConfig{Kind: k, TotalCells: scale.RandomNumCells, Seed: uint64(scale.Seed)},
					Trace:      traceRandomNum(scale.Seed),
					LoadFactor: 0.5,
					Ops:        scale.Ops,
					Seed:       scale.Seed,
				}, 5))
			}
			harness.PrintRepeated(w, rows)
		})
	}
	if sel["curve"] {
		timed("curve", func() {
			r := harness.LoadCurves(scale)
			harness.PrintCurves(w, r)
			writeCSV("curve.csv", func(f *os.File) error { return harness.WriteCurveCSV(f, r) })
		})
	}
	if want("excluded") {
		timed("excluded", func() {
			r := harness.ExcludedComparison(scale)
			harness.PrintExcluded(w, r)
			writeCSV("excluded.csv", func(f *os.File) error { return harness.WriteExcludedCSV(f, r) })
		})
	}
	if want("expand") {
		timed("expand", func() {
			runExpandExperiment(w, scale, &report)
			writeCSV("expand.csv", func(f *os.File) error {
				if _, err := fmt.Fprintln(f, "mode,workers,gomaxprocs,num_cpu,cells,items,wall_ms,speedup"); err != nil {
					return err
				}
				for _, r := range report.ExpandRehash {
					if _, err := fmt.Fprintf(f, "%s,%d,%d,%d,%d,%d,%.3f,%.3f\n",
						r.Mode, r.Workers, r.GoMaxProcs, r.NumCPU, r.Cells, r.Items, r.WallMs, r.Speedup); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
	if want("probe") {
		timed("probe", func() {
			runProbeExperiment(w, scale, &report)
			writeCSV("probe.csv", func(f *os.File) error {
				if _, err := fmt.Fprintln(f, "case,target_lf_pct,load_factor_pct,fingerprints,ns_per_op,speedup,fp_hits_per_op,fp_skips_per_op"); err != nil {
					return err
				}
				for _, r := range report.Probe {
					if _, err := fmt.Fprintf(f, "%s,%d,%.2f,%v,%.2f,%.3f,%.3f,%.3f\n",
						r.Case, r.TargetLfPct, r.LfPct, r.Fingerprints, r.NsOp, r.Speedup, r.FpHitsOp, r.FpSkipsOp); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
	if want("oplog") {
		timed("oplog", func() {
			runOplogExperiment(w, scale, &report)
			writeCSV("oplog.csv", func(f *os.File) error {
				if _, err := fmt.Fprintln(f, "mode,conns,batch,ops,wall_ms,kops_per_sec,slowdown"); err != nil {
					return err
				}
				for _, r := range report.OplogThroughput {
					if _, err := fmt.Fprintf(f, "%s,%d,%d,%d,%.3f,%.3f,%.3f\n", r.Mode, r.Conns, r.Batch, r.Ops, r.WallMs, r.KopsSec, r.Slowdown); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
	if want("metrics") {
		timed("metrics", func() {
			runMetricsExperiment(w, scale, &report)
			writeCSV("metrics.csv", func(f *os.File) error {
				if _, err := fmt.Fprintln(f, "mode,conns,batch,ops,wall_ms,kops_per_sec,overhead"); err != nil {
					return err
				}
				for _, r := range report.MetricsOverhead {
					if _, err := fmt.Fprintf(f, "%s,%d,%d,%d,%.3f,%.3f,%.3f\n", r.Mode, r.Conns, r.Batch, r.Ops, r.WallMs, r.KopsSec, r.Overhead); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
	if want("batch") {
		timed("batch", func() {
			runBatchExperiment(w, scale, &report)
			writeCSV("batch.csv", func(f *os.File) error {
				if _, err := fmt.Fprintln(f, "workload,shape,batch,conns,ops,wall_ms,kops_per_sec,speedup,allocs_per_op,oplog_appends_per_kop,count_persists_per_kop"); err != nil {
					return err
				}
				for _, r := range report.BatchThroughput {
					if _, err := fmt.Fprintf(f, "%s,%s,%d,%d,%d,%.3f,%.3f,%.3f,%.4f,%.3f,%.3f\n",
						r.Workload, r.Shape, r.Batch, r.Conns, r.Ops, r.WallMs, r.KopsSec, r.Speedup,
						r.AllocsPerOp, r.OplogAppendsPerKop, r.CountPersistsPerKop); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
	if want("engines") {
		timed("engines", func() {
			runEnginesExperiment(w, scale, &report)
			writeCSV("engines.csv", func(f *os.File) error {
				if _, err := fmt.Fprintln(f, "engine,workload,batch,conns,ops,wall_ms,kops_per_sec,items,capacity,load_factor,rel_vs_flagship,allocs_per_op"); err != nil {
					return err
				}
				for _, r := range report.Engines {
					if _, err := fmt.Fprintf(f, "%s,%s,%d,%d,%d,%.3f,%.3f,%d,%d,%.4f,%.3f,%.4f\n",
						r.Engine, r.Workload, r.Batch, r.Conns, r.Ops, r.WallMs, r.KopsSec,
						r.Items, r.Capacity, r.LoadFactor, r.RelVsFlagship, r.AllocsPerOp); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
	if want("workload") {
		timed("workload", func() {
			runWorkloadExperiment(w, scale, &report)
			writeCSV("workload.csv", func(f *os.File) error {
				if _, err := fmt.Fprintln(f, "shape,engine,zipf_theta,tenants,flash_peak,conns,depth,batch,records,steps,acked_ops,wall_ms,kops_per_sec,burst_p50_us,burst_p99_us"); err != nil {
					return err
				}
				for _, r := range report.Workload {
					if _, err := fmt.Fprintf(f, "%s,%s,%.2f,%d,%.2f,%d,%d,%d,%d,%d,%d,%.3f,%.3f,%.1f,%.1f\n",
						r.Shape, r.Engine, r.Theta, r.Tenants, r.Flash, r.Conns, r.Depth, r.Batch,
						r.Records, r.Steps, r.Acked, r.WallMs, r.KopsSec, r.BurstP50Us, r.BurstP99Us); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
	if want("ycsb") {
		timed("ycsb", func() {
			r := harness.YCSBComparison(scale)
			harness.PrintYCSB(w, r)
			writeCSV("ycsb.csv", func(f *os.File) error { return harness.WriteYCSBCSV(f, r) })
		})
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ghbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := report.write(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "ghbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "figure metrics written to %s\n", *jsonOut)
	}
}
