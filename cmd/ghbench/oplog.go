package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"grouphash"
	"grouphash/internal/harness"
	"grouphash/internal/layout"
	"grouphash/internal/oplog"
	"grouphash/internal/server"
	"grouphash/internal/wire"
)

// The oplog experiment measures what the durability contract costs:
// acked-write throughput through a real server over loopback TCP,
// without the operation log, with the legacy synchronous
// fsync-per-batch log, and with the adaptive group-commit windows the
// server ships with. Pipelining and the (T, B) window are the whole
// story — the wider the commit, the more acked writes share one fsync
// — so each row also reports the fsync count and the ack-latency tail
// the batching buys that throughput with.

// oplogThroughputRow is one (mode, shape) measurement of pipelined
// acked writes through the network server.
type oplogThroughputRow struct {
	Mode     string  `json:"mode"`  // "no-oplog", "oplog-sync", "oplog-100us-64KiB", ...
	Conns    int     `json:"conns"` // concurrent client connections
	Batch    int     `json:"batch"` // requests per pipelined batch
	Depth    int     `json:"depth"` // batches in flight per connection
	Ops      int     `json:"ops"`   // total acked writes
	WallMs   float64 `json:"wall_ms"`
	KopsSec  float64 `json:"kops_per_sec"`
	Slowdown float64 `json:"slowdown_vs_baseline"` // 1.0 for the baseline row
	Fsyncs   uint64  `json:"fsyncs,omitempty"`     // log fsyncs over the run
	// Server-side ack latency (request receipt → durable release) and
	// client-side batch RTT quantiles, microseconds. Ack quantiles are
	// zero for the no-oplog row: nothing is held for durability there.
	AckP50Us float64 `json:"ack_p50_us,omitempty"`
	AckP99Us float64 `json:"ack_p99_us,omitempty"`
	RTTP50Us float64 `json:"rtt_p50_us"`
	RTTP99Us float64 `json:"rtt_p99_us"`
}

// quantileUs picks the q-quantile of sorted per-batch durations, in µs.
func quantileUs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e3
}

// oplogWorker streams perConn acked writes over one raw connection
// with up to depth batches in flight — the windowed pipelining the
// apply/ack decoupling is built for: the server keeps applying (and
// staging log records) while earlier batches' acks wait for the
// durable watermark, so one group commit releases a window's worth of
// work. depth 1 degenerates to the synchronous Do-per-batch client.
// Per-batch round trips (send start → last response) land in rtts.
func oplogWorker(addr string, base uint64, perConn, batch, depth int, rtts *[]time.Duration, mu *sync.Mutex) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		panic(err)
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 64<<10)
	br := bufio.NewReaderSize(conn, 64<<10)
	batches := perConn / batch
	sent := make(chan time.Time, depth-1) // buffered sends beyond the one being read
	done := make(chan error, 1)
	go func() {
		mine := make([]time.Duration, 0, batches)
		for b := 0; b < batches; b++ {
			t0 := <-sent
			for j := 0; j < batch; j++ {
				resp, err := wire.ReadResponse(br)
				if err != nil {
					done <- err
					return
				}
				if resp.Status != wire.StatusOK {
					done <- fmt.Errorf("put status %d", resp.Status)
					return
				}
			}
			mine = append(mine, time.Since(t0))
		}
		mu.Lock()
		*rtts = append(*rtts, mine...)
		mu.Unlock()
		done <- nil
	}()
	var buf []byte
	for b := 0; b < batches; b++ {
		buf = buf[:0]
		for j := 0; j < batch; j++ {
			k := base + uint64(b*batch+j) + 1
			buf = wire.AppendRequest(buf, wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: k}, Value: k})
		}
		sent <- time.Now() // blocks while depth batches are already in flight
		if _, err := bw.Write(buf); err != nil {
			panic(err)
		}
		if err := bw.Flush(); err != nil {
			panic(err)
		}
	}
	if err := <-done; err != nil {
		panic(err)
	}
}

// oplogThroughputBench acks `ops` pipelined writes through a freshly
// started server and returns the wall time plus latency quantiles.
// With withLog, every ack is covered by the durable watermark of an
// operation log running under lcfg (the zero Config is the legacy
// synchronous fsync-per-batch mode).
func oplogThroughputBench(mode string, conns, batch, depth, ops int, withLog bool, lcfg oplog.Config) oplogThroughputRow {
	dir, err := os.MkdirTemp("", "ghbench-oplog-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	st, err := grouphash.New(grouphash.Options{Capacity: 1 << 18, Concurrent: true})
	if err != nil {
		panic(err)
	}
	var lg *oplog.Log
	if withLog {
		if lg, err = oplog.OpenConfig(filepath.Join(dir, "oplog"), 1, lcfg); err != nil {
			panic(err)
		}
	}
	srv, err := server.New(server.Config{Store: st, Oplog: lg})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	perConn := ops / conns
	var wg sync.WaitGroup
	var rttMu sync.Mutex
	var rtts []time.Duration
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			oplogWorker(ln.Addr().String(), uint64(c+1)<<40, perConn, batch, depth, &rtts, &rttMu)
		}(c)
	}
	wg.Wait()
	wall := float64(time.Since(start).Nanoseconds()) / 1e6
	row := oplogThroughputRow{
		Mode: mode, Conns: conns, Batch: batch, Depth: depth, Ops: conns * perConn,
		WallMs: wall, KopsSec: float64(conns*perConn) / wall,
	}
	if withLog {
		row.Fsyncs = uint64(lg.Fsyncs())
		ack := srv.AckLatency()
		row.AckP50Us = ack.Quantile(0.50) / 1e3
		row.AckP99Us = ack.Quantile(0.99) / 1e3
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	row.RTTP50Us = quantileUs(rtts, 0.50)
	row.RTTP99Us = quantileUs(rtts, 0.99)
	if err := srv.Drain(); err != nil {
		panic(err)
	}
	<-serveDone
	return row
}

// runOplogExperiment measures acked-write throughput without the log,
// with the legacy synchronous log, and with the two shipped adaptive
// group-commit windows, folding every row (throughput, fsyncs, ack and
// RTT quantiles) into the JSON report. The acceptance bar is the
// adaptive default staying within 1.2x of the no-oplog baseline.
func runOplogExperiment(w io.Writer, scale harness.Scale, report *jsonReport) {
	ops := scale.Ops
	if ops > 200_000 {
		ops = 200_000
	}
	if ops < 128_000 {
		ops = 128_000 // short runs drown the slowdown ratio in startup noise
	}

	modes := []struct {
		name    string
		withLog bool
		cfg     oplog.Config
	}{
		{"no-oplog", false, oplog.Config{}},
		{"oplog-sync", true, oplog.Config{}},
		{"oplog-100us-64KiB", true, oplog.Config{
			SyncEvery: 100 * time.Microsecond, SyncBytes: 64 << 10, PreallocBytes: 4 << 20}},
		{"oplog-1ms-256KiB", true, oplog.Config{
			SyncEvery: time.Millisecond, SyncBytes: 256 << 10, PreallocBytes: 4 << 20}},
	}
	shapes := []struct{ conns, batch, depth int }{{4, 64, 1}, {4, 64, 8}, {16, 64, 16}}
	for _, sh := range shapes {
		conns, batch, depth := sh.conns, sh.batch, sh.depth
		fmt.Fprintf(w, "Acked-write throughput (loopback TCP, %d conns, %d-op batches, %d in flight):\n", conns, batch, depth)
		var baseline float64
		for _, m := range modes {
			// Best of five: each cell is a fresh server and a fraction of
			// a second of wall time, so scheduler and disk noise dominate
			// a single run; the fastest of five is the honest capability
			// number.
			var row oplogThroughputRow
			for rep := 0; rep < 5; rep++ {
				r := oplogThroughputBench(m.name, conns, batch, depth, ops, m.withLog, m.cfg)
				if rep == 0 || r.KopsSec > row.KopsSec {
					row = r
				}
			}
			if baseline == 0 {
				baseline = row.KopsSec
			}
			row.Slowdown = baseline / row.KopsSec
			fmt.Fprintf(w, "  %-18s %8d ops  %8.1f ms  %8.1f kops/s  slowdown %.2fx  fsyncs %6d  ack p50/p99 %6.0f/%6.0f µs  rtt p50/p99 %6.0f/%6.0f µs\n",
				row.Mode, row.Ops, row.WallMs, row.KopsSec, row.Slowdown, row.Fsyncs,
				row.AckP50Us, row.AckP99Us, row.RTTP50Us, row.RTTP99Us)
			report.OplogThroughput = append(report.OplogThroughput, row)
		}
	}
}
