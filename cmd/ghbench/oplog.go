package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"grouphash"
	"grouphash/internal/client"
	"grouphash/internal/harness"
	"grouphash/internal/layout"
	"grouphash/internal/oplog"
	"grouphash/internal/server"
	"grouphash/internal/wire"
)

// The oplog experiment measures what the durability contract costs:
// acked-write throughput through a real server over loopback TCP, with
// and without the operation log. Pipelining is the whole story — a
// batch of writes shares one group-committed fsync, so the log's cost
// per op shrinks with batch size.

// oplogThroughputRow is one (mode, batch) throughput measurement of
// pipelined acked writes through the network server.
type oplogThroughputRow struct {
	Mode     string  `json:"mode"`  // "no-oplog" or "oplog"
	Conns    int     `json:"conns"` // concurrent client connections
	Batch    int     `json:"batch"` // requests per pipelined Do
	Ops      int     `json:"ops"`   // total acked writes
	WallMs   float64 `json:"wall_ms"`
	KopsSec  float64 `json:"kops_per_sec"`
	Slowdown float64 `json:"slowdown_vs_baseline"` // 1.0 for the baseline row
}

// oplogThroughputBench acks `ops` pipelined writes through a freshly
// started server and returns the wall time. With withLog, every ack is
// covered by a group-committed fsync of the operation log.
func oplogThroughputBench(conns, batch, ops int, withLog bool) oplogThroughputRow {
	dir, err := os.MkdirTemp("", "ghbench-oplog-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	st, err := grouphash.New(grouphash.Options{Capacity: 1 << 18, Concurrent: true})
	if err != nil {
		panic(err)
	}
	var lg *oplog.Log
	mode := "no-oplog"
	if withLog {
		if lg, err = oplog.Open(filepath.Join(dir, "oplog"), 1); err != nil {
			panic(err)
		}
		mode = "oplog"
	}
	srv, err := server.New(server.Config{Store: st, Oplog: lg})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	perConn := ops / conns
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial(ln.Addr().String(), 2*time.Second)
			if err != nil {
				panic(err)
			}
			defer cl.Close()
			base := uint64(c+1) << 40
			reqs := make([]wire.Request, batch)
			for done := 0; done < perConn; done += batch {
				for j := range reqs {
					k := base + uint64(done+j) + 1
					reqs[j] = wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: k}, Value: k}
				}
				resps, err := cl.Do(reqs)
				if err != nil {
					panic(err)
				}
				for _, r := range resps {
					if r.Status != wire.StatusOK {
						panic(fmt.Sprintf("put status %d", r.Status))
					}
				}
			}
		}(c)
	}
	wg.Wait()
	wall := float64(time.Since(start).Nanoseconds()) / 1e6
	if err := srv.Drain(); err != nil {
		panic(err)
	}
	<-serveDone
	total := conns * perConn
	return oplogThroughputRow{
		Mode: mode, Conns: conns, Batch: batch, Ops: total,
		WallMs: wall, KopsSec: float64(total) / wall,
	}
}

// runOplogExperiment measures acked-write throughput without and with
// the operation log and folds both rows into the JSON report; the
// acceptance bar is the logged run staying within 2x of the baseline.
func runOplogExperiment(w io.Writer, scale harness.Scale, report *jsonReport) {
	ops := scale.Ops
	if ops > 200_000 {
		ops = 200_000
	}
	if ops < 20_000 {
		ops = 20_000
	}
	const conns, batch = 4, 64
	base := oplogThroughputBench(conns, batch, ops, false)
	base.Slowdown = 1
	logged := oplogThroughputBench(conns, batch, ops, true)
	logged.Slowdown = base.KopsSec / logged.KopsSec

	fmt.Fprintf(w, "Acked-write throughput (loopback TCP, %d conns, %d-op pipelined batches):\n", conns, batch)
	for _, r := range []oplogThroughputRow{base, logged} {
		fmt.Fprintf(w, "  %-9s %8d ops  %8.1f ms  %8.1f kops/s  slowdown %.2fx\n",
			r.Mode, r.Ops, r.WallMs, r.KopsSec, r.Slowdown)
	}
	report.OplogThroughput = append(report.OplogThroughput, base, logged)
}
