package main

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"grouphash/internal/engine"
	"grouphash/internal/harness"
	"grouphash/internal/layout"
	"grouphash/internal/oplog"
	"grouphash/internal/server"
)

// The engines experiment is the paper's scheme shoot-out moved
// end-to-end over the wire: every engine behind the internal/engine
// seam serves the same workloads through the same server, oplog and
// batch funnel — the flagship group-hash store with its striped batch
// path, the comparison schemes through the mutex adapter's sequential
// fallback. The shape matches the batch experiment's strongest cell
// (16 conns, 256 ops in flight as explicit OpBatch frames, adaptive
// oplog), so the flagship row here against BENCH_PR8's batch=256 rows
// is the measured cost of the engine interface itself.
//
// Every engine is preloaded with the same items (batchKeyspan keys per
// connection) over the same key space; structural capacity differs by
// scheme geometry, so each row reports its own measured load factor.

// engineRow is one (engine, workload) cell of the engines experiment.
type engineRow struct {
	Engine   string  `json:"engine"`
	Workload string  `json:"workload"` // get, put, mixed
	Batch    int     `json:"batch"`    // sub-ops per OpBatch frame
	Conns    int     `json:"conns"`
	Ops      int     `json:"ops"`
	WallMs   float64 `json:"wall_ms"`
	KopsSec  float64 `json:"kops_per_sec"`
	// Items and LoadFactor are the engine's occupancy after the
	// measured phase (preload + fresh measured inserts / structural
	// capacity — fixed-size schemes have ~2x cell headroom, so the
	// same item count lands at a scheme-specific load factor).
	Items      uint64  `json:"items"`
	Capacity   uint64  `json:"capacity"`
	LoadFactor float64 `json:"load_factor"`
	// RelVsFlagship is this row's throughput relative to the grouphash
	// row of the same workload (1.0 for grouphash itself).
	RelVsFlagship float64 `json:"rel_vs_flagship"`
	// AllocsPerOp is the process-wide heap allocation rate over the
	// measured phase; the flagship path is pooled to zero, the adapter
	// path is required to stay flat too.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// engineCell measures one (engine, workload) cell: a fresh server over
// the chosen engine with an adaptive oplog, preload, warmup on the
// same connections, then a GC-bracketed measured phase — batchCell's
// protocol with the engine swapped out.
func engineCell(name, workload string, conns, frame, warmOps, ops int) engineRow {
	dir, err := os.MkdirTemp("", "ghbench-engines-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	eng, err := engine.New(engine.Spec{Name: name, Capacity: 1 << 19})
	if err != nil {
		panic(err)
	}
	for c := 0; c < conns; c++ {
		base := uint64(c+1) << 40
		for n := uint64(1); n <= batchKeyspan; n++ {
			k := base + n
			if err := eng.Put(layout.Key{Lo: k, Hi: k * 0x9e3779b97f4a7c15}, k); err != nil {
				panic(err)
			}
		}
	}
	lg, err := oplog.OpenConfig(filepath.Join(dir, "oplog"), 1, oplog.Config{
		SyncEvery: 100 * time.Microsecond, SyncBytes: 64 << 10, PreallocBytes: 4 << 20})
	if err != nil {
		panic(err)
	}
	srv, err := server.New(server.Config{Engine: eng, Oplog: lg})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	perConn := ops / conns
	var warm, wg sync.WaitGroup
	warm.Add(conns)
	wg.Add(conns)
	gate := make(chan struct{})
	for c := 0; c < conns; c++ {
		go func(c int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
			if err != nil {
				panic(err)
			}
			defer conn.Close()
			w := newBatchWorker(conn, uint64(c+1)<<40)
			w.run(warmOps/conns, workload, frame)
			warm.Done()
			<-gate
			w.run(perConn, workload, frame)
		}(c)
	}
	warm.Wait()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	close(gate)
	wg.Wait()
	wall := float64(time.Since(start).Nanoseconds()) / 1e6
	runtime.ReadMemStats(&m1)

	total := conns * perConn
	row := engineRow{
		Engine: name, Workload: workload, Batch: frame, Conns: conns, Ops: total,
		WallMs: wall, KopsSec: float64(total) / wall,
		Items: eng.Len(), Capacity: eng.Capacity(), LoadFactor: eng.LoadFactor(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(total),
	}
	if err := srv.Drain(); err != nil {
		panic(err)
	}
	<-serveDone
	return row
}

// runEnginesExperiment sweeps engine × workload at the batch
// experiment's 16-conn/256-in-flight shape, best of five per cell,
// normalising each workload against its flagship row.
func runEnginesExperiment(w io.Writer, scale harness.Scale, report *jsonReport) {
	// Same clamp as the batch experiment, so the flagship rows here are
	// directly comparable to BENCH_PR8's batch=256 rows.
	ops := scale.Ops
	if ops > 262_144 {
		ops = 262_144
	}
	if ops < 131_072 {
		ops = 131_072
	}
	const conns = 16
	const frame = batchBurst // 256 sub-ops per OpBatch frame
	ops = (ops / (conns * batchBurst)) * conns * batchBurst
	warm := conns * batchBurst * 2

	for _, workload := range []string{"get", "put", "mixed"} {
		fmt.Fprintf(w, "Engine shoot-out, %s workload (loopback TCP, %d conns, batch=%d frames, adaptive oplog):\n",
			workload, conns, frame)
		var flagship float64
		for _, name := range engine.Names() {
			var row engineRow
			for rep := 0; rep < 5; rep++ {
				r := engineCell(name, workload, conns, frame, warm, ops)
				if rep == 0 || r.KopsSec > row.KopsSec {
					row = r
				}
			}
			if name == "grouphash" {
				flagship = row.KopsSec
			}
			row.RelVsFlagship = row.KopsSec / flagship
			fmt.Fprintf(w, "  %-12s %8d ops  %8.1f ms  %8.1f kops/s  vs flagship %.2fx  lf %.3f (%d/%d)  allocs/op %6.3f\n",
				name, row.Ops, row.WallMs, row.KopsSec, row.RelVsFlagship,
				row.LoadFactor, row.Items, row.Capacity, row.AllocsPerOp)
			report.Engines = append(report.Engines, row)
		}
	}
}
