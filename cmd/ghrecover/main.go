// Command ghrecover demonstrates and stress-tests crash recovery for
// every scheme in the repository. Each round loads a table on the
// simulated NVM machine, runs a random operation stream, injects a
// power failure at a random memory event — usually landing INSIDE an
// operation — recovers, and verifies atomicity: every operation that
// completed before the cut is fully visible, every operation after it
// fully absent, and the operation containing the cut is all-or-nothing.
//
// Usage:
//
//	ghrecover -scheme group -rounds 50 -cells 16384
//	ghrecover -scheme linear -rounds 50
//
// Schemes without a consistency mechanism (linear, pfht, path) are
// expected to FAIL some rounds — that failure is the paper's
// motivation (Figure 1), and the tool reports it as a finding rather
// than crashing.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"grouphash/internal/harness"
	"grouphash/internal/hashtab"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
)

func main() {
	scheme := flag.String("scheme", "group", "group, linear, linear-L, pfht, pfht-L, path, path-L")
	rounds := flag.Int("rounds", 50, "crash-recovery rounds")
	cells := flag.Uint64("cells", 1<<14, "total cell budget")
	seed := flag.Int64("seed", 1, "base seed")
	flag.Parse()

	kind := harness.Kind(*scheme)
	ok, bad := 0, 0
	for round := 0; round < *rounds; round++ {
		violations, err := runRound(kind, *cells, *seed+int64(round))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghrecover: %v\n", err)
			os.Exit(1)
		}
		if violations == 0 {
			ok++
		} else {
			bad++
			fmt.Printf("round %3d: %d atomicity violations\n", round, violations)
		}
	}
	fmt.Printf("\nscheme %s: %d/%d rounds fully recovered\n", *scheme, ok, *rounds)
	if bad > 0 {
		fmt.Println("violations observed — this scheme has no consistency mechanism;")
		fmt.Println("compare with its -L variant or with group hashing")
	}
}

type opRecord struct {
	insert bool
	key    uint64
	value  uint64
	endAcc uint64 // cumulative access counter when the op returned
}

// runRound executes a stream with a shadow crash scheduled at a random
// memory event, adopts the crash image, recovers, and verifies
// atomicity against the replayed oracle.
func runRound(kind harness.Kind, cells uint64, seed int64) (violations int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("scheme %s panicked: %v", kind, r)
		}
	}()
	cfg := harness.BuildConfig{Kind: kind, TotalCells: cells, KeyBytes: 8, Seed: uint64(seed)}
	mem := memsim.New(memsim.Config{Size: harness.RegionBytes(cfg), Seed: seed})
	tab := harness.Build(mem, cfg)

	rng := rand.New(rand.NewSource(seed))
	live := make(map[uint64]uint64)
	var ops []opRecord
	nops := 500 + rng.Intn(1500)

	// Phase 1: run a warm-up half so the crash cuts into a busy table,
	// then schedule the crash somewhere in the second half.
	for op := 0; op < nops/2; op++ {
		step(tab, rng, live, &ops, mem)
	}
	crashAt := mem.Counters().Accesses + uint64(rng.Intn(5000)) + 1
	mem.ScheduleShadowCrash(crashAt, rng.Float64())
	for op := nops / 2; op < nops; op++ {
		step(tab, rng, live, &ops, mem)
	}
	if !mem.AdoptShadowCrash() {
		// The stream ended before the scheduled event: treat as a
		// clean run, nothing to verify.
		return 0, nil
	}
	if r, okRec := tab.(hashtab.Recoverable); okRec {
		if _, err := r.Recover(); err != nil {
			return 0, err
		}
	}

	// Replay the oracle up to the crash point. An op is definitely
	// durable only if it finished STRICTLY before the cut: its final
	// commit persist runs after its last counted memory access, so an
	// op whose last access coincides with the cut may still be rolled
	// back. That op — the straddler — is "uncertain" (legal either
	// way); everything after it was never executed in the adopted
	// image.
	oracle := make(map[uint64]uint64)
	uncertain := make(map[uint64]bool)
	prevEnd := uint64(0)
	for _, rec := range ops {
		switch {
		case rec.endAcc < crashAt: // fully before the cut: committed
			if rec.insert {
				oracle[rec.key] = rec.value
			} else {
				delete(oracle, rec.key)
			}
		case prevEnd < crashAt: // the op containing the cut
			uncertain[rec.key] = true
		}
		prevEnd = rec.endAcc
	}

	for key, v := range oracle {
		if uncertain[key] {
			continue
		}
		got, found := tab.Lookup(layout.Key{Lo: key})
		if !found || got != v {
			violations++
		}
	}
	return violations, nil
}

// step performs one random mutation and records it.
func step(tab hashtab.Table, rng *rand.Rand, live map[uint64]uint64, ops *[]opRecord, mem *memsim.Memory) {
	key := uint64(rng.Intn(2000)) + 1
	k := layout.Key{Lo: key}
	if _, exists := live[key]; !exists && rng.Intn(2) == 0 {
		v := key * 7
		if tab.Insert(k, v) == nil {
			live[key] = v
			*ops = append(*ops, opRecord{insert: true, key: key, value: v, endAcc: mem.Counters().Accesses})
		}
	} else if exists {
		tab.Delete(k)
		delete(live, key)
		*ops = append(*ops, opRecord{insert: false, key: key, endAcc: mem.Counters().Accesses})
	}
}
