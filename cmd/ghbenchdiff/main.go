// Command ghbenchdiff compares two `go test -bench` output files the
// way benchstat does — per-benchmark old-vs-new with a percentage
// delta — without the external dependency (this repository is
// stdlib-only by policy).
//
// Usage:
//
//	ghbenchdiff old.txt new.txt
//	ghbenchdiff -gate ceilings.txt current.txt
//
// Run each side with -count N (N ≥ 3 recommended) so a delta is a
// comparison of means with a visible spread, not two noisy samples.
// The tool exits 0 regardless of regressions: it is a reporting aid
// for `make bench-diff`, and what counts as a regression is for the
// reader (or the PR discussion) to decide — benchmarks here include
// wall-clock numbers from shared CI machines. Rows whose baseline
// mean is zero (or whose samples are empty/unparseable) print "n/a"
// instead of a delta: a refreshed baseline must never make the tool
// divide by zero or crash the diff for every later PR.
//
// Allocation numbers are the exception to "the reader decides": they
// are deterministic (no wall-clock noise), so -gate enforces them.
// The ceilings file lists `BenchmarkName  max-allocs/op` pairs (#
// comments and blank lines ignored; names match with the -GOMAXPROCS
// suffix stripped); a benchmark whose mean allocs/op exceeds its
// ceiling — or that is missing from the bench output entirely, so a
// rename can't silently skip the gate — fails the run with exit 1.
// `make bench-allocs` drives this against bench_allocs_floors.txt.
package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is every measurement collected for one benchmark name in one
// file, one slice per unit ("ns/op", "B/op", ...).
type sample struct {
	units map[string][]float64
	order []string // units in first-seen order
}

// primaryUnit is the first-seen unit of a sample, or "" when the
// benchmark line carried no parseable (value, unit) pair at all — a
// malformed baseline must degrade to an "n/a" row, not an index panic.
func (s *sample) primaryUnit() string {
	if s == nil || len(s.order) == 0 {
		return ""
	}
	return s.order[0]
}

// parseBench reads a `go test -bench` output file: lines shaped
//
//	BenchmarkName[/sub...]-P  <iters>  <value> <unit> [<value> <unit>...]
//
// Everything else (PASS, ok, --- BENCH log sections, b.Logf output) is
// ignored. The -P GOMAXPROCS suffix stays in the name: cpu-sweep rows
// are distinct benchmarks.
func parseBench(path string) (map[string]*sample, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := map[string]*sample{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count; some other line
		}
		s := out[fields[0]]
		if s == nil {
			s = &sample{units: map[string][]float64{}}
			out[fields[0]] = s
			order = append(order, fields[0])
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			if _, seen := s.units[unit]; !seen {
				s.order = append(s.order, unit)
			}
			s.units[unit] = append(s.units[unit], v)
		}
	}
	return out, order, sc.Err()
}

// meanSpread reduces a sample set to its mean and max relative
// deviation from the mean (the ± the report prints). An empty set
// yields (0, 0), never NaN.
func meanSpread(xs []float64) (mean, spreadPct float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		if d := math.Abs(x-mean) / math.Max(mean, 1e-12) * 100; d > spreadPct {
			spreadPct = d
		}
	}
	return mean, spreadPct
}

func main() {
	w := bufio.NewWriter(os.Stdout)
	switch {
	case len(os.Args) == 4 && os.Args[1] == "-gate":
		ok, err := gate(os.Args[2], os.Args[3], w)
		w.Flush()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghbenchdiff: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
	case len(os.Args) == 3:
		err := run(os.Args[1], os.Args[2], w)
		w.Flush()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghbenchdiff: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: ghbenchdiff old.txt new.txt\n       ghbenchdiff -gate ceilings.txt current.txt")
		os.Exit(2)
	}
}

// stripProcSuffix removes the trailing -GOMAXPROCS decoration go test
// appends to benchmark names ("BenchmarkFoo/sub-8" → "BenchmarkFoo/sub"),
// so ceilings files stay valid across machines with different core
// counts. Only an all-digit final segment is stripped.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// gate enforces the allocs/op ceilings in floorsPath against the bench
// output in benchPath. Returns ok=false (after printing every verdict)
// when any listed benchmark exceeds its ceiling or is absent from the
// output; an unparseable ceilings file is an error, not a pass.
func gate(floorsPath, benchPath string, w io.Writer) (bool, error) {
	f, err := os.Open(floorsPath)
	if err != nil {
		return false, err
	}
	defer f.Close()
	type ceiling struct {
		name string
		max  float64
	}
	var ceilings []ceiling
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return false, fmt.Errorf("%s:%d: want `BenchmarkName max-allocs/op`, got %q", floorsPath, line, text)
		}
		max, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || max < 0 {
			return false, fmt.Errorf("%s:%d: bad ceiling %q", floorsPath, line, fields[1])
		}
		ceilings = append(ceilings, ceiling{fields[0], max})
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	if len(ceilings) == 0 {
		return false, fmt.Errorf("%s: no ceilings — an empty gate gates nothing", floorsPath)
	}

	cur, curOrder, err := parseBench(benchPath)
	if err != nil {
		return false, err
	}
	ok := true
	fmt.Fprintf(w, "%-44s %12s %12s  %s\n", "benchmark", "allocs/op", "ceiling", "verdict")
	for _, c := range ceilings {
		found := false
		for _, name := range curOrder {
			if stripProcSuffix(name) != c.name {
				continue
			}
			found = true
			xs := cur[name].units["allocs/op"]
			if len(xs) == 0 {
				ok = false
				fmt.Fprintf(w, "%-44s %12s %12g  FAIL (no allocs/op — run with -benchmem)\n",
					strings.TrimPrefix(name, "Benchmark"), "—", c.max)
				continue
			}
			mean, _ := meanSpread(xs)
			verdict := "ok"
			if mean > c.max {
				ok = false
				verdict = "FAIL"
			}
			fmt.Fprintf(w, "%-44s %12.3f %12g  %s\n",
				strings.TrimPrefix(name, "Benchmark"), mean, c.max, verdict)
		}
		if !found {
			ok = false
			fmt.Fprintf(w, "%-44s %12s %12g  FAIL (missing from bench output)\n",
				strings.TrimPrefix(c.name, "Benchmark"), "—", c.max)
		}
	}
	return ok, nil
}

// run is the whole comparison: parse both files, print the aligned
// table and per-unit geomeans to w. Split from main so the degenerate
// baselines (zero means, empty samples) are testable without a
// subprocess.
func run(oldPath, newPath string, w io.Writer) error {
	old, oldOrder, err := parseBench(oldPath)
	if err != nil {
		return err
	}
	cur, curOrder, err := parseBench(newPath)
	if err != nil {
		return err
	}

	// Old file dictates row order; new-only benchmarks append after.
	names := append([]string{}, oldOrder...)
	for _, n := range curOrder {
		if _, ok := old[n]; !ok {
			names = append(names, n)
		}
	}

	fmt.Fprintf(w, "%-52s %16s %16s %9s\n", "name", "old", "new", "delta")
	byUnit := map[string][]float64{} // per-unit delta ratios for the geomean
	for _, name := range names {
		o, c := old[name], cur[name]
		short := strings.TrimPrefix(name, "Benchmark")
		switch {
		case c == nil:
			fmt.Fprintf(w, "%-52s %16s %16s %9s\n", short, fmtMean(o, o.primaryUnit()), "—", "deleted")
		case o == nil:
			fmt.Fprintf(w, "%-52s %16s %16s %9s\n", short, "—", fmtMean(c, c.primaryUnit()), "new")
		default:
			for _, unit := range o.order {
				if _, ok := c.units[unit]; !ok {
					continue
				}
				om, _ := meanSpread(o.units[unit])
				cm, _ := meanSpread(c.units[unit])
				label := short
				if unit != o.primaryUnit() {
					label = short + " [" + unit + "]"
				}
				delta := "n/a"
				if om > 0 {
					delta = fmt.Sprintf("%+8.2f%%", (cm-om)/om*100)
				}
				fmt.Fprintf(w, "%-52s %16s %16s %9s\n",
					label, fmtMean(o, unit), fmtMean(c, unit), delta)
				if om > 0 && cm > 0 {
					byUnit[unit] = append(byUnit[unit], cm/om)
				}
			}
		}
	}
	units := make([]string, 0, len(byUnit))
	for u := range byUnit {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		ratios := byUnit[u]
		logSum := 0.0
		for _, r := range ratios {
			logSum += math.Log(r)
		}
		fmt.Fprintf(w, "geomean [%s]  %+.2f%%  (%d benchmarks)\n",
			u, (math.Exp(logSum/float64(len(ratios)))-1)*100, len(ratios))
	}
	return nil
}

// fmtMean renders one unit of a sample as "mean ±spread% unit", or "—"
// when the sample has no measurements under that unit.
func fmtMean(s *sample, unit string) string {
	if s == nil || len(s.units[unit]) == 0 {
		return "—"
	}
	m, sp := meanSpread(s.units[unit])
	val := strconv.FormatFloat(m, 'g', 5, 64)
	if sp >= 0.5 {
		return fmt.Sprintf("%s%s ±%.0f%%", val, unitSuffix(unit), sp)
	}
	return val + unitSuffix(unit)
}

// unitSuffix abbreviates the dominant units for column compactness.
func unitSuffix(unit string) string {
	switch unit {
	case "ns/op":
		return "ns"
	case "B/op":
		return "B"
	case "allocs/op":
		return "al"
	}
	return unit
}
