package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestZeroBaselineMeanIsNA is the regression test for the divide-by-
// zero crash: a refreshed baseline can legitimately record 0 for a
// counter-style unit (e.g. 0 allocs/op, 0 fsyncs/op). The diff must
// render "n/a" for that row's delta, keep the row out of the geomean,
// and exit cleanly.
func TestZeroBaselineMeanIsNA(t *testing.T) {
	oldP := writeTemp(t, "old.txt", `
BenchmarkAckedWrite/nolog-8   1000  120.0 ns/op  0 allocs/op
BenchmarkAckedWrite/legacy-8  1000  900.0 ns/op  2 allocs/op
`)
	newP := writeTemp(t, "new.txt", `
BenchmarkAckedWrite/nolog-8   1000  110.0 ns/op  1 allocs/op
BenchmarkAckedWrite/legacy-8  1000  450.0 ns/op  2 allocs/op
`)
	var b strings.Builder
	if err := run(oldP, newP, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "n/a") {
		t.Fatalf("zero baseline mean did not render n/a:\n%s", out)
	}
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("output leaked Inf/NaN:\n%s", out)
	}
	if !strings.Contains(out, "-50.00%") {
		t.Fatalf("healthy row lost its delta:\n%s", out)
	}
	// The allocs/op geomean must only count the rows with a non-zero
	// baseline — one benchmark, not two.
	if !strings.Contains(out, "geomean [allocs/op]  +0.00%  (1 benchmarks)") {
		t.Fatalf("geomean included the zero-baseline row:\n%s", out)
	}
}

// TestMalformedSampleNoPanic pins the o.order[0] hardening: a baseline
// row whose measurements never parse (empty unit list) used to panic
// when the benchmark was later deleted. It must render an em-dash row.
func TestMalformedSampleNoPanic(t *testing.T) {
	oldP := writeTemp(t, "old.txt", `
BenchmarkBroken-8  1000  garbage ns/op
BenchmarkFine-8    1000  100.0 ns/op
`)
	newP := writeTemp(t, "new.txt", `
BenchmarkFine-8    1000  100.0 ns/op
`)
	var b strings.Builder
	if err := run(oldP, newP, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Broken-8") || !strings.Contains(out, "deleted") {
		t.Fatalf("malformed deleted row missing:\n%s", out)
	}
	if !strings.Contains(out, "+0.00%") {
		t.Fatalf("healthy row missing:\n%s", out)
	}
}

// TestNewAndDeletedRows covers the alignment paths around a baseline
// refresh: rows only in the old file read "deleted", rows only in the
// new file read "new", and ordering follows the old file first.
func TestNewAndDeletedRows(t *testing.T) {
	oldP := writeTemp(t, "old.txt", "BenchmarkGone-8 100 50.0 ns/op\n")
	newP := writeTemp(t, "new.txt", "BenchmarkAdded-8 100 75.0 ns/op\n")
	var b strings.Builder
	if err := run(oldP, newP, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	gone := strings.Index(out, "Gone-8")
	added := strings.Index(out, "Added-8")
	if gone < 0 || added < 0 || gone > added {
		t.Fatalf("row alignment wrong:\n%s", out)
	}
	if !strings.Contains(out, "deleted") || !strings.Contains(out, "new") {
		t.Fatalf("status columns missing:\n%s", out)
	}
}
