package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestZeroBaselineMeanIsNA is the regression test for the divide-by-
// zero crash: a refreshed baseline can legitimately record 0 for a
// counter-style unit (e.g. 0 allocs/op, 0 fsyncs/op). The diff must
// render "n/a" for that row's delta, keep the row out of the geomean,
// and exit cleanly.
func TestZeroBaselineMeanIsNA(t *testing.T) {
	oldP := writeTemp(t, "old.txt", `
BenchmarkAckedWrite/nolog-8   1000  120.0 ns/op  0 allocs/op
BenchmarkAckedWrite/legacy-8  1000  900.0 ns/op  2 allocs/op
`)
	newP := writeTemp(t, "new.txt", `
BenchmarkAckedWrite/nolog-8   1000  110.0 ns/op  1 allocs/op
BenchmarkAckedWrite/legacy-8  1000  450.0 ns/op  2 allocs/op
`)
	var b strings.Builder
	if err := run(oldP, newP, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "n/a") {
		t.Fatalf("zero baseline mean did not render n/a:\n%s", out)
	}
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("output leaked Inf/NaN:\n%s", out)
	}
	if !strings.Contains(out, "-50.00%") {
		t.Fatalf("healthy row lost its delta:\n%s", out)
	}
	// The allocs/op geomean must only count the rows with a non-zero
	// baseline — one benchmark, not two.
	if !strings.Contains(out, "geomean [allocs/op]  +0.00%  (1 benchmarks)") {
		t.Fatalf("geomean included the zero-baseline row:\n%s", out)
	}
}

// TestMalformedSampleNoPanic pins the o.order[0] hardening: a baseline
// row whose measurements never parse (empty unit list) used to panic
// when the benchmark was later deleted. It must render an em-dash row.
func TestMalformedSampleNoPanic(t *testing.T) {
	oldP := writeTemp(t, "old.txt", `
BenchmarkBroken-8  1000  garbage ns/op
BenchmarkFine-8    1000  100.0 ns/op
`)
	newP := writeTemp(t, "new.txt", `
BenchmarkFine-8    1000  100.0 ns/op
`)
	var b strings.Builder
	if err := run(oldP, newP, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Broken-8") || !strings.Contains(out, "deleted") {
		t.Fatalf("malformed deleted row missing:\n%s", out)
	}
	if !strings.Contains(out, "+0.00%") {
		t.Fatalf("healthy row missing:\n%s", out)
	}
}

// TestGatePassAndFail covers the -gate verdicts: a benchmark at or
// under its ceiling passes, one over fails, and a ceiling whose
// benchmark never ran fails too (a rename must not skip the gate).
func TestGatePassAndFail(t *testing.T) {
	bench := writeTemp(t, "cur.txt", `
BenchmarkWriteResponseFixed-8    1000  12.0 ns/op  0 B/op  0 allocs/op
BenchmarkWriteResponseFixed-8    1000  12.5 ns/op  0 B/op  0 allocs/op
BenchmarkServeBatchPipeline-8    1000  6000 ns/op  3 B/op  2 allocs/op
`)
	floors := writeTemp(t, "floors.txt", `
# comment lines and blanks are fine
BenchmarkWriteResponseFixed 0
BenchmarkServeBatchPipeline 0.5
BenchmarkRequestReaderBatch 0
`)
	var b strings.Builder
	ok, err := gate(floors, bench, &b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("gate passed despite a violation and a missing benchmark:\n%s", b.String())
	}
	out := b.String()
	if !strings.Contains(out, "WriteResponseFixed-8") || strings.Contains(out, "WriteResponseFixed-8 ") && !strings.Contains(out, "ok") {
		t.Fatalf("passing row missing:\n%s", out)
	}
	if !strings.Contains(out, "FAIL (missing from bench output)") {
		t.Fatalf("missing-benchmark row not flagged:\n%s", out)
	}
	if strings.Count(out, "FAIL") != 2 {
		t.Fatalf("want exactly 2 FAIL rows (over-ceiling + missing):\n%s", out)
	}

	allPass := writeTemp(t, "floors2.txt", "BenchmarkWriteResponseFixed 0\nBenchmarkServeBatchPipeline 2\n")
	b.Reset()
	ok, err = gate(allPass, bench, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("gate failed with every ceiling satisfied:\n%s", b.String())
	}
}

// TestGateRejectsDegenerateInputs pins the error paths: a malformed
// ceilings line, a benchmark run without -benchmem, and an empty
// ceilings file must all refuse to pass.
func TestGateRejectsDegenerateInputs(t *testing.T) {
	bench := writeTemp(t, "cur.txt", "BenchmarkNoMem-8 1000 12.0 ns/op\n")
	var b strings.Builder
	if _, err := gate(writeTemp(t, "bad.txt", "BenchmarkNoMem zero allocs\n"), bench, &b); err == nil {
		t.Fatal("malformed ceilings line accepted")
	}
	if _, err := gate(writeTemp(t, "empty.txt", "# nothing\n"), bench, &b); err == nil {
		t.Fatal("empty ceilings file accepted")
	}
	b.Reset()
	ok, err := gate(writeTemp(t, "floors.txt", "BenchmarkNoMem 0\n"), bench, &b)
	if err != nil {
		t.Fatal(err)
	}
	if ok || !strings.Contains(b.String(), "-benchmem") {
		t.Fatalf("benchmark without allocs/op passed the allocation gate:\n%s", b.String())
	}
}

// TestStripProcSuffix pins the name normalisation the ceilings file
// relies on.
func TestStripProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo/sub-16":     "BenchmarkFoo/sub",
		"BenchmarkFoo":            "BenchmarkFoo",
		"BenchmarkAdaptive-1ms-8": "BenchmarkAdaptive-1ms", // only the numeric tail goes
		"BenchmarkTrailingDash-":  "BenchmarkTrailingDash-",
	} {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestNewAndDeletedRows covers the alignment paths around a baseline
// refresh: rows only in the old file read "deleted", rows only in the
// new file read "new", and ordering follows the old file first.
func TestNewAndDeletedRows(t *testing.T) {
	oldP := writeTemp(t, "old.txt", "BenchmarkGone-8 100 50.0 ns/op\n")
	newP := writeTemp(t, "new.txt", "BenchmarkAdded-8 100 75.0 ns/op\n")
	var b strings.Builder
	if err := run(oldP, newP, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	gone := strings.Index(out, "Gone-8")
	added := strings.Index(out, "Added-8")
	if gone < 0 || added < 0 || gone > added {
		t.Fatalf("row alignment wrong:\n%s", out)
	}
	if !strings.Contains(out, "deleted") || !strings.Contains(out, "new") {
		t.Fatalf("status columns missing:\n%s", out)
	}
}
