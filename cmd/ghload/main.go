// Command ghload is the load generator for ghserver: it preloads a
// keyspace, then drives a YCSB mix (internal/trace) over pipelined
// connections and reports achieved throughput and latency percentiles.
// The storage engine is the server's choice (ghserver -engine); the
// wire protocol is identical for all of them, so the same ghload
// invocation compares schemes by pointing at differently-booted
// servers.
//
// Usage:
//
//	ghload -addr 127.0.0.1:4777 -workload b -records 100000 -ops 1000000 -conns 4 -depth 64
//
// Each connection runs its own YCSB generator (seeded differently) and
// pipelines -depth operations per batch; reads, updates and
// read-modify-writes follow the mix's ratios (YCSB inserts are sent as
// upserts so repeated runs against one server don't grow duplicate
// items). A server drain mid-run is handled gracefully: the worker
// stops and only acked operations are counted — the number a restarted
// server must still hold.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"grouphash/internal/client"
	"grouphash/internal/layout"
	"grouphash/internal/stats"
	"grouphash/internal/trace"
	"grouphash/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:4777", "server address")
		workload = flag.String("workload", "b", "YCSB mix: a, b, c, d or f")
		records  = flag.Uint64("records", 100_000, "keys preloaded before the mix runs")
		ops      = flag.Uint64("ops", 1_000_000, "total operations across all connections")
		conns    = flag.Int("conns", 4, "concurrent connections (one goroutine each)")
		depth    = flag.Int("depth", 64, "pipelined operations per batch")
		batch    = flag.Int("batch", 0, "send operations as explicit OpBatch frames of this many sub-ops (0 = pipelined single frames); the -depth burst still travels in one flush")
		seed     = flag.Int64("seed", 1, "workload seed (each connection derives its own)")
		skipLoad = flag.Bool("skip-load", false, "skip the preload phase (server already holds the records)")
	)
	flag.Parse()
	log.SetPrefix("ghload: ")
	log.SetFlags(0)
	if *conns < 1 || *depth < 1 || *records == 0 {
		log.Fatal("need -conns ≥ 1, -depth ≥ 1, -records ≥ 1")
	}
	if len(*workload) != 1 {
		log.Fatal("-workload must be a single letter")
	}

	fmt.Printf("ghload: addr=%s workload=YCSB-%s records=%d ops=%d conns=%d depth=%d batch=%d\n",
		*addr, *workload, *records, *ops, *conns, *depth, *batch)

	if !*skipLoad {
		start := time.Now()
		loaded := preload(*addr, *records, *conns, *depth, *batch)
		dur := time.Since(start)
		fmt.Printf("load:  %d keys in %.2fs (%.0f ops/s)\n",
			loaded, dur.Seconds(), float64(loaded)/dur.Seconds())
	}

	acked, drained, rtt, dur := run(*addr, (*workload)[0], *records, *ops, *conns, *depth, *batch, *seed)
	fmt.Printf("run:   %d ops acked in %.2fs (%.0f ops/s)\n",
		acked, dur.Seconds(), float64(acked)/dur.Seconds())
	us := func(q float64) float64 { return rtt.Quantile(q) / 1e3 }
	fmt.Printf("batch RTT (%d ops/batch, %d batches): p50=%.0fµs p90=%.0fµs p99=%.0fµs max=%.0fµs mean=%.0fµs\n",
		*depth, rtt.Count, us(0.5), us(0.9), us(0.99), rtt.Max()/1e3, rtt.Mean()/1e3)
	if c, err := client.Dial(*addr, 0); err == nil {
		if text, err := c.ServerStats(); err == nil {
			fmt.Printf("server: %s\n", text)
		}
		c.Close()
	}
	if drained {
		fmt.Println("ghload: server drained mid-run; counts above cover acked operations only")
		os.Exit(3)
	}
}

// send ships one burst: pipelined single frames by default, explicit
// OpBatch frames of batch sub-ops when -batch is set.
func send(c *client.Client, reqs []wire.Request, batch int) ([]wire.Response, error) {
	if batch > 0 {
		return c.DoBatchN(reqs, batch)
	}
	return c.Do(reqs)
}

// preload puts keys 1..records (value = key) through pipelined
// batches, split across conns connections. Returns acked count.
func preload(addr string, records uint64, conns, depth, batch int) uint64 {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var total uint64
	per := records / uint64(conns)
	for w := 0; w < conns; w++ {
		lo := uint64(w)*per + 1
		hi := lo + per - 1
		if w == conns-1 {
			hi = records
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			c, err := client.Dial(addr, 5*time.Second)
			if err != nil {
				log.Fatalf("dial: %v", err)
			}
			defer c.Close()
			var acked uint64
			reqs := make([]wire.Request, 0, depth)
			for k := lo; k <= hi; {
				reqs = reqs[:0]
				for ; k <= hi && len(reqs) < depth; k++ {
					reqs = append(reqs, wire.Request{Op: wire.OpPut, Key: layout.Key{Lo: k}, Value: k})
				}
				resps, err := send(c, reqs, batch)
				if err != nil {
					log.Fatalf("preload batch: %v", err)
				}
				for _, r := range resps {
					if r.Status != wire.StatusOK {
						log.Fatalf("preload status %d", r.Status)
					}
					acked++
				}
			}
			mu.Lock()
			total += acked
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return total
}

// run drives the mix and returns (acked ops, drained?, batch RTT
// distribution, wall time). The RTT histogram is the server's own
// latency type — lock-free, so every worker observes into one shared
// instance with no mutex on the timing path, and the client-side view
// is directly comparable against the server's per-op scrape.
func run(addr string, workload byte, records, ops uint64, conns, depth, batch int, seed int64) (uint64, bool, *stats.HistSnapshot, time.Duration) {
	rtt := &stats.Histogram{}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var total uint64
	var drained bool
	per := ops / uint64(conns)
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr, 5*time.Second)
			if err != nil {
				log.Fatalf("dial: %v", err)
			}
			defer c.Close()
			gen := trace.NewYCSB(workload, records, seed+int64(w)*7919)
			var acked uint64
			reqs := make([]wire.Request, 0, depth+1)
			for done := uint64(0); done < per; {
				reqs = reqs[:0]
				for uint64(len(reqs)) < uint64(depth) && done+uint64(len(reqs)) < per {
					step := gen.Next()
					switch step.Op {
					case trace.YCSBRead:
						reqs = append(reqs, wire.Request{Op: wire.OpGet, Key: step.Item.Key})
					case trace.YCSBUpdate, trace.YCSBInsert:
						reqs = append(reqs, wire.Request{Op: wire.OpPut, Key: step.Item.Key, Value: step.Item.Value})
					case trace.YCSBRMW:
						// Read-modify-write: the read and the write of
						// one RMW travel in the same pipeline and count
						// as two wire operations.
						reqs = append(reqs,
							wire.Request{Op: wire.OpGet, Key: step.Item.Key},
							wire.Request{Op: wire.OpPut, Key: step.Item.Key, Value: step.Item.Value})
					}
				}
				t0 := time.Now()
				resps, err := send(c, reqs, batch)
				rtt.Observe(uint64(time.Since(t0)))
				if err != nil {
					mu.Lock()
					drained = true
					mu.Unlock()
					break
				}
				for _, r := range resps {
					if r.Status == wire.StatusFull || r.Status == wire.StatusInvalidKey || r.Status == wire.StatusBadRequest {
						log.Fatalf("server rejected an operation: status %d", r.Status)
					}
				}
				acked += uint64(len(resps))
				done += uint64(len(resps))
			}
			mu.Lock()
			total += acked
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return total, drained, rtt.Snapshot(), time.Since(start)
}
