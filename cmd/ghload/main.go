// Command ghload is the workload lab's command-line front end: it
// preloads a (possibly multi-tenant) keyspace and drives an
// internal/trace Mix over pipelined or batched connections against a
// ghserver, reporting achieved throughput and latency percentiles —
// overall and per tenant. The storage engine is the server's choice
// (ghserver -engine); the wire protocol is identical for all of them,
// so the same ghload invocation compares schemes by pointing at
// differently-booted servers.
//
// The classic YCSB letters set the operation mix; the lab knobs shape
// everything else:
//
//	-zipf-theta 1.2            key skew (0 = uniform; 0.99 = YCSB default)
//	-tenants 8                 isolated per-tenant key prefixes + metrics
//	-value-dist web            value-size mixture (fixed, web, "1:90,16:10")
//	-flash-crowd 10000:5000:40000:0.3
//	                           hot-key spike: start:ramp:hold ops, peak share
//	-duration 30s              time-bounded run (instead of -ops)
//
// Example — a flash crowd where one key ramps to 30% of traffic:
//
//	ghload -addr 127.0.0.1:4777 -workload a -records 100000 \
//	    -duration 30s -flash-crowd 100000:50000:400000:0.30
//
// A server drain mid-run is handled gracefully: workers finish their
// in-flight burst and only acked operations are counted — the number a
// restarted server must still hold (exit status 3 marks such a run).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"grouphash/internal/client"
	"grouphash/internal/loadgen"
	"grouphash/internal/stats"
	"grouphash/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:4777", "server address")
		workload  = flag.String("workload", "b", "YCSB mix letter: a, b, c, d or f")
		records   = flag.Uint64("records", 100_000, "keys preloaded per tenant before the mix runs")
		ops       = flag.Uint64("ops", 1_000_000, "total steps across all connections (ignored when -duration is set)")
		duration  = flag.Duration("duration", 0, "run for a wall-clock window instead of an op budget (workers drain in-flight bursts at the deadline)")
		conns     = flag.Int("conns", 4, "concurrent connections (one goroutine each)")
		depth     = flag.Int("depth", 64, "pipelined operations per burst")
		batch     = flag.Int("batch", 0, "send bursts as explicit OpBatch frames of this many sub-ops (0 = pipelined single frames); preload uses the same framing")
		seed      = flag.Int64("seed", 1, "workload seed (each connection derives its own)")
		skipLoad  = flag.Bool("skip-load", false, "skip the preload phase (server already holds the records)")
		theta     = flag.Float64("zipf-theta", 0.99, "Zipfian skew over existing keys (0 = uniform)")
		tenants   = flag.Int("tenants", 1, "tenant count: isolated key prefixes, per-tenant throughput/latency")
		valueDist = flag.String("value-dist", "fixed", `value-size mixture: "fixed", "web", or "span:weight,..." (records span that many keys)`)
		flash     = flag.String("flash-crowd", "", `hot-key spike "start:ramp:hold:peak" — at op start, one key ramps over ramp ops to peak share of traffic, holds for hold ops, ramps down`)
		dumpProm  = flag.Bool("metrics-dump", false, "print the client-side Prometheus exposition (per-tenant series) after the run")
	)
	flag.Parse()
	log.SetPrefix("ghload: ")
	log.SetFlags(0)
	if len(*workload) != 1 {
		log.Fatal("-workload must be a single letter")
	}
	read, update, insert, rmw, err := trace.MixFracs((*workload)[0])
	if err != nil {
		log.Fatal(err)
	}
	values, err := trace.ParseValueDist(*valueDist)
	if err != nil {
		log.Fatal(err)
	}
	mix := trace.MixConfig{
		Records:    *records,
		Theta:      *theta,
		Tenants:    *tenants,
		ReadFrac:   read,
		UpdateFrac: update,
		InsertFrac: insert,
		RMWFrac:    rmw,
		Values:     values,
		Seed:       *seed,
		Flash:      parseFlash(*flash),
	}
	if _, err := trace.NewMix(mix); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ghload: addr=%s workload=YCSB-%s records=%d tenants=%d theta=%g value-dist=%s conns=%d depth=%d batch=%d",
		*addr, *workload, *records, *tenants, *theta, values, *conns, *depth, *batch)
	if *duration > 0 {
		fmt.Printf(" duration=%v\n", *duration)
	} else {
		fmt.Printf(" ops=%d\n", *ops)
	}

	cfg := loadgen.Config{
		Addr:  *addr,
		Mix:   mix,
		Conns: *conns,
		Depth: *depth,
		Batch: *batch,
	}
	if !*skipLoad {
		start := time.Now()
		loaded, err := loadgen.Preload(cfg)
		if err != nil {
			log.Fatal(err)
		}
		dur := time.Since(start)
		fmt.Printf("load:  %d keys in %.2fs (%.0f ops/s)\n",
			loaded, dur.Seconds(), float64(loaded)/dur.Seconds())
	}

	reg := stats.NewRegistry()
	cfg.Registry = reg
	if *duration > 0 {
		cfg.Duration = *duration
	} else {
		cfg.Ops = *ops
	}
	res, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run:   %d steps, %d wire ops acked in %.2fs (%.0f ops/s)\n",
		res.Steps, res.Acked, res.Wall.Seconds(), float64(res.Acked)/res.Wall.Seconds())
	us := func(h *stats.HistSnapshot, q float64) float64 { return h.Quantile(q) / 1e3 }
	fmt.Printf("batch RTT (%d batches): p50=%.0fµs p90=%.0fµs p99=%.0fµs max=%.0fµs mean=%.0fµs\n",
		res.RTT.Count, us(res.RTT, 0.5), us(res.RTT, 0.9), us(res.RTT, 0.99), res.RTT.Max()/1e3, res.RTT.Mean()/1e3)
	if *tenants > 1 {
		for _, tr := range res.Tenants {
			share := float64(tr.Acked) / float64(res.Acked) * 100
			fmt.Printf("tenant %d: %d ops (%.1f%%) p50=%.0fµs p99=%.0fµs\n",
				tr.Tenant, tr.Acked, share, us(tr.RTT, 0.5), us(tr.RTT, 0.99))
		}
	}
	if *dumpProm {
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if c, err := client.Dial(*addr, 0); err == nil {
		if text, err := c.ServerStats(); err == nil {
			fmt.Printf("server: %s\n", text)
		}
		c.Close()
	}
	if res.Drained {
		fmt.Println("ghload: server drained mid-run; counts above cover acked operations only")
		os.Exit(3)
	}
}

// parseFlash parses the -flash-crowd spec "start:ramp:hold:peak".
func parseFlash(spec string) *trace.FlashCrowd {
	if spec == "" {
		return nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		log.Fatalf(`-flash-crowd %q: want "start:ramp:hold:peak"`, spec)
	}
	nums := make([]uint64, 3)
	for i := 0; i < 3; i++ {
		n, err := strconv.ParseUint(parts[i], 10, 64)
		if err != nil {
			log.Fatalf("-flash-crowd %q: %v", spec, err)
		}
		nums[i] = n
	}
	peak, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		log.Fatalf("-flash-crowd %q: %v", spec, err)
	}
	return &trace.FlashCrowd{Start: nums[0], Ramp: nums[1], Hold: nums[2], Peak: peak}
}
