// Command ghserver serves a grouphash store over TCP: the concurrent
// native-backend table behind the length-prefixed wire protocol, with
// periodic background snapshots and a graceful drain on SIGINT/SIGTERM
// that quiesces writers and saves a final image — restart with the
// same -image and every write acked before the drain is back.
//
// Usage:
//
//	ghserver -addr :4777 -capacity 1048576 -image /var/lib/gh/store.pmfs
//
// Durability: acked writes are durable up to the last snapshot (plus
// the final drain snapshot on clean shutdown); a power failure loses
// acked writes since the last snapshot — there is no WAL yet. See
// DESIGN.md §6.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"grouphash"
	"grouphash/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":4777", "TCP listen address")
		capacity = flag.Uint64("capacity", 1<<20, "initial item capacity (the store expands online when it fills)")
		group    = flag.Uint64("group-size", 0, "cells per group (0 = the paper's 256)")
		image    = flag.String("image", "", "pmfs image path: loaded at start if present, snapshot target while serving")
		every    = flag.Duration("snapshot-every", 30*time.Second, "background snapshot period (0 = only the final drain snapshot)")
		statsDur = flag.Duration("stats-every", 0, "log server stats at this period (0 = off)")
	)
	flag.Parse()
	log.SetPrefix("ghserver: ")
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	var st *grouphash.Store
	var err error
	if *image != "" {
		if _, statErr := os.Stat(*image); statErr == nil {
			if st, err = grouphash.LoadSnapshot(*image, true); err != nil {
				log.Fatalf("loading image %s: %v", *image, err)
			}
			log.Printf("loaded %d items from %s", st.Len(), *image)
		}
	}
	if st == nil {
		st, err = grouphash.New(grouphash.Options{
			Capacity:   *capacity,
			GroupSize:  *group,
			Concurrent: true,
		})
		if err != nil {
			log.Fatalf("creating store: %v", err)
		}
	}

	srv, err := server.New(server.Config{
		Store:         st,
		SnapshotPath:  *image,
		SnapshotEvery: *every,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *statsDur > 0 {
		go func() {
			for range time.Tick(*statsDur) {
				log.Print(srv.StatsText())
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	case got := <-sig:
		log.Printf("%s: draining", got)
		if err := srv.Drain(); err != nil {
			log.Fatalf("drain: %v", err)
		}
		<-serveErr
		log.Print(srv.StatsText())
	}
}
