// Command ghserver serves a storage engine over TCP: by default the
// concurrent native-backend group-hash table, or — via -engine — any
// of the paper's comparison schemes behind the same wire protocol,
// with group-committed operation logging, periodic background
// snapshots and a graceful drain on SIGINT/SIGTERM that refuses late
// writes, saves a final image and seals the log.
//
// Usage:
//
//	ghserver -addr :4777 -capacity 1048576 \
//	    -image /var/lib/gh/store.pmfs -oplog /var/lib/gh/oplog
//	ghserver -engine pathhash -capacity 65536 -image /tmp/path.pmfs
//
// Durability: with -oplog, acked means durable — every mutating
// request is appended to the operation log and its response is held
// until an adaptive group commit (-oplog-sync-every /
// -oplog-sync-bytes: fsync when the window ages out or enough bytes
// stage, whichever first) carries its LSN past the durable watermark.
// Worst-case added ack latency is the window; -oplog-sync-every 0
// restores the synchronous fsync-per-batch mode. Snapshots bound the
// log's length, and start-up recovery is image + replay: after any
// crash, power failure included, every acked write is back, exactly
// once. Without -oplog the server degrades to snapshots only, where a
// crash loses acked writes since the last image. See DESIGN.md §6.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"grouphash/internal/engine"
	"grouphash/internal/oplog"
	"grouphash/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":4777", "TCP listen address")
		engName  = flag.String("engine", "grouphash", fmt.Sprintf("storage engine: %s (grouphash is the paper's scheme and expands online; the comparison schemes are fixed-size; pfht/pathhash/linearprobe accept an -l suffix for the undo-WAL variants)", strings.Join(engine.Names(), "|")))
		capacity = flag.Uint64("capacity", 1<<20, "initial item capacity (the grouphash engine expands online when it fills; comparison engines allocate ~2x headroom in cells and stay fixed)")
		group    = flag.Uint64("group-size", 0, "cells per group (grouphash only; 0 = the paper's 256)")
		seed     = flag.Uint64("seed", 0, "hash-function seed (must match across restarts of the same image)")
		image    = flag.String("image", "", "pmfs image path: loaded at start if present, snapshot target while serving")
		logBase  = flag.String("oplog", "", "operation log base path: acked writes are fsynced here before the ack and replayed over the image at start (\"\" = snapshots only; a crash then loses acked writes since the last image)")
		syncT    = flag.Duration("oplog-sync-every", 100*time.Microsecond, "adaptive group-commit window: acks are released when a batch has aged this long (0 = fsync synchronously per pipelined batch, the pre-adaptive behaviour)")
		syncB    = flag.Int("oplog-sync-bytes", 64<<10, "close the group-commit window early once this many staged bytes accumulate (0 = timer only; ignored when -oplog-sync-every is 0)")
		prealloc = flag.Int64("oplog-prealloc", 4<<20, "preallocate (zero-fill) each log segment to this size so steady-state group commits are data-only fdatasyncs (0 = grow on demand)")
		every    = flag.Duration("snapshot-every", 30*time.Second, "background snapshot period (0 = only the final drain snapshot)")
		statsDur = flag.Duration("stats-every", 0, "log server stats at this period (0 = off)")
		metrics  = flag.String("metrics-addr", "", "HTTP listen address serving GET /metrics (Prometheus scrape) and /healthz (readiness; 503 once draining); \"\" = off")
	)
	flag.Parse()
	log.SetPrefix("ghserver: ")
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	spec := engine.Spec{
		Name:      *engName,
		Capacity:  *capacity,
		GroupSize: *group,
		Seed:      *seed,
	}
	var eng engine.Engine
	var mark uint64
	var err error
	if *image != "" {
		if _, statErr := os.Stat(*image); statErr == nil {
			if eng, mark, err = engine.Load(spec, *image); err != nil {
				log.Fatalf("loading image %s: %v", *image, err)
			}
			log.Printf("loaded %d items from %s (engine %s, oplog mark %d)", eng.Len(), *image, eng.Name(), mark)
		}
	}
	if eng == nil {
		if eng, err = engine.New(spec); err != nil {
			log.Fatalf("creating engine: %v", err)
		}
		log.Printf("engine %s (capacity %d)", eng.Name(), *capacity)
	}

	var lg *oplog.Log
	if *logBase != "" {
		applied, next, err := eng.ReplayOplog(*logBase, mark)
		if err != nil {
			log.Fatalf("oplog replay from %s: %v", *logBase, err)
		}
		if applied > 0 {
			log.Printf("replayed %d acked writes from %s (through LSN %d); %d items now", applied, *logBase, next-1, eng.Len())
		} else {
			log.Printf("oplog %s: nothing to replay past mark %d", *logBase, mark)
		}
		if lg, err = oplog.OpenConfig(*logBase, next, oplog.Config{
			SyncEvery:     *syncT,
			SyncBytes:     *syncB,
			PreallocBytes: *prealloc,
		}); err != nil {
			log.Fatalf("opening oplog %s: %v", *logBase, err)
		}
	} else if mark != 0 {
		log.Printf("WARNING: image was written with an oplog (mark %d) but -oplog is unset; acked writes past the image are being ignored", mark)
	}

	srv, err := server.New(server.Config{
		Engine:        eng,
		SnapshotPath:  *image,
		SnapshotEvery: *every,
		Oplog:         lg,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	var msrv *http.Server
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.Registry())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			if srv.Ready() {
				w.Write([]byte("ok\n"))
				return
			}
			http.Error(w, "draining", http.StatusServiceUnavailable)
		})
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("metrics listener on %s: %v", *metrics, err)
		}
		msrv = &http.Server{Handler: mux}
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", mln.Addr())
	}

	// The stats logger is tied to shutdown: a bare time.Tick would keep
	// this goroutine printing stale counters after the drain.
	statsStop := make(chan struct{})
	statsDone := make(chan struct{})
	if *statsDur > 0 {
		go func() {
			defer close(statsDone)
			t := time.NewTicker(*statsDur)
			defer t.Stop()
			for {
				select {
				case <-statsStop:
					return
				case <-t.C:
					log.Print(srv.StatsText())
				}
			}
		}()
	} else {
		close(statsDone)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	case got := <-sig:
		log.Printf("%s: draining", got)
		close(statsStop)
		<-statsDone
		if err := srv.Drain(); err != nil {
			log.Fatalf("drain: %v", err)
		}
		<-serveErr
		if msrv != nil {
			// Kept up through the drain so /healthz reports 503 to load
			// balancers while connections wind down; closed after.
			msrv.Close()
		}
		log.Print(srv.StatsText())
	}
}
