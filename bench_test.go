// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), plus ablations of the design choices called out in
// DESIGN.md. Simulated quantities (request latency, L3 misses, flush
// counts) are attached to each benchmark as custom metrics:
//
//	sim-ns/op     simulated request latency (Figures 2a, 5, 8a)
//	L3miss/op     simulated L3 misses (Figures 2b, 6)
//	flush/op      clflush instructions per request
//	util%         space utilisation (Figures 7, 8b)
//	recovery-ms   simulated recovery time (Table 3)
//
// Benchmarks default to harness.TestScale so `go test -bench=.` stays
// fast; `go run ./cmd/ghbench -scale default` (or `-scale paper`) runs
// the full-size experiments and prints the figure tables.
package grouphash_test

import (
	"fmt"
	"testing"

	"grouphash"
	"grouphash/internal/core"
	"grouphash/internal/harness"
	"grouphash/internal/layout"
	"grouphash/internal/memsim"
	"grouphash/internal/trace"
	"grouphash/internal/wal"
)

// benchScale is shared by every figure bench.
func benchScale() harness.Scale { return harness.TestScale() }

// reportOp attaches one phase's simulated costs to the benchmark.
func reportOp(b *testing.B, c harness.OpCost) {
	b.ReportMetric(c.AvgLatencyNs, "sim-ns/op")
	b.ReportMetric(c.AvgL3Misses, "L3miss/op")
	b.ReportMetric(c.AvgFlushes, "flush/op")
}

// BenchmarkFig2ConsistencyCost reproduces Figure 2: the six baseline
// variants (linear, pfht, path × {plain, logged}) on RandomNum at load
// factor 0.5. Sub-benchmarks report per-op insert and delete costs; the
// headline logged/unlogged ratios print once.
func BenchmarkFig2ConsistencyCost(b *testing.B) {
	s := benchScale()
	for _, k := range harness.Fig2Schemes() {
		k := k
		b.Run(string(k), func(b *testing.B) {
			var res harness.LatencyResult
			for i := 0; i < b.N; i++ {
				res = harness.RunLatency(harness.LatencyConfig{
					Build:      harness.BuildConfig{Kind: k, TotalCells: s.RandomNumCells, Seed: 1},
					Trace:      trace.NewRandomNum(s.Seed),
					LoadFactor: 0.5,
					Ops:        s.Ops,
					Seed:       s.Seed,
				})
			}
			b.ReportMetric(res.Insert.AvgLatencyNs+res.Delete.AvgLatencyNs, "sim-ns/op")
			b.ReportMetric(res.Insert.AvgL3Misses+res.Delete.AvgL3Misses, "L3miss/op")
		})
	}
}

// BenchmarkFig5Latency and BenchmarkFig6CacheMisses share the same runs
// (one RunLatency yields both metrics); each cell of the paper's 3×2
// grid is a sub-benchmark per scheme and operation.
func BenchmarkFig5Latency(b *testing.B) { benchRequestMatrix(b, false) }

// BenchmarkFig6CacheMisses reports the miss metric of the same grid.
func BenchmarkFig6CacheMisses(b *testing.B) { benchRequestMatrix(b, true) }

func benchRequestMatrix(b *testing.B, misses bool) {
	s := benchScale()
	for _, tr := range trace.All(s.Seed) {
		for _, lf := range []float64{0.5, 0.75} {
			for _, k := range harness.Fig5Schemes() {
				tr, lf, k := tr, lf, k
				name := fmt.Sprintf("%s/lf%.2f/%s", tr.Name(), lf, k)
				b.Run(name, func(b *testing.B) {
					var res harness.LatencyResult
					for i := 0; i < b.N; i++ {
						res = harness.RunLatency(harness.LatencyConfig{
							Build:      harness.BuildConfig{Kind: k, TotalCells: s.RandomNumCells, Seed: 1},
							Trace:      tr,
							LoadFactor: lf,
							Ops:        s.Ops,
							Seed:       s.Seed,
						})
					}
					for phase, c := range map[string]harness.OpCost{
						"insert": res.Insert, "query": res.Query, "delete": res.Delete,
					} {
						if misses {
							b.ReportMetric(c.AvgL3Misses, phase+"-L3miss/op")
						} else {
							b.ReportMetric(c.AvgLatencyNs, phase+"-sim-ns/op")
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig7SpaceUtil reproduces Figure 7: utilisation at first
// insertion failure for PFHT, path and group hashing on each trace.
func BenchmarkFig7SpaceUtil(b *testing.B) {
	s := benchScale()
	for _, tr := range trace.All(s.Seed) {
		for _, k := range []harness.Kind{harness.PFHT, harness.Path, harness.Group} {
			tr, k := tr, k
			b.Run(fmt.Sprintf("%s/%s", tr.Name(), k), func(b *testing.B) {
				var res harness.SpaceUtilResult
				for i := 0; i < b.N; i++ {
					res = harness.RunSpaceUtil(harness.BuildConfig{
						Kind: k, TotalCells: s.RandomNumCells, Seed: 1,
					}, tr)
				}
				b.ReportMetric(res.Utilization*100, "util%")
			})
		}
	}
}

// BenchmarkFig8GroupSize reproduces Figure 8: request latency and space
// utilisation across group sizes on RandomNum at load factor 0.5.
func BenchmarkFig8GroupSize(b *testing.B) {
	s := benchScale()
	for _, gs := range s.GroupSizes {
		gs := gs
		b.Run(fmt.Sprintf("group%d", gs), func(b *testing.B) {
			var lat harness.LatencyResult
			var util harness.SpaceUtilResult
			for i := 0; i < b.N; i++ {
				lat = harness.RunLatency(harness.LatencyConfig{
					Build: harness.BuildConfig{
						Kind: harness.Group, TotalCells: s.RandomNumCells,
						GroupSize: gs, Seed: 1,
					},
					Trace:      trace.NewRandomNum(s.Seed),
					LoadFactor: 0.5,
					Ops:        s.Ops,
					Seed:       s.Seed,
				})
				util = harness.RunSpaceUtil(harness.BuildConfig{
					Kind: harness.Group, TotalCells: s.RandomNumCells,
					GroupSize: gs, Seed: 1,
				}, trace.NewRandomNum(s.Seed))
			}
			reportOp(b, lat.Insert)
			b.ReportMetric(util.Utilization*100, "util%")
		})
	}
}

// BenchmarkTable3Recovery reproduces Table 3: simulated recovery time
// vs. table size, with the load ("execution") time for the percentage.
func BenchmarkTable3Recovery(b *testing.B) {
	s := benchScale()
	for _, bytes := range s.RecoverySizes {
		bytes := bytes
		b.Run(fmt.Sprintf("%dMB", bytes>>20), func(b *testing.B) {
			var res harness.RecoveryResult
			for i := 0; i < b.N; i++ {
				res = harness.RunRecovery(bytes, s.Seed)
			}
			b.ReportMetric(res.RecoveryMs, "recovery-ms")
			b.ReportMetric(res.ExecMs, "exec-ms")
			b.ReportMetric(res.Percentage, "recovery%")
		})
	}
}

// BenchmarkAblationPrefetch isolates the sequential-prefetch assumption
// behind group sharing's cache argument: the same group-hash query
// workload with the modelled next-line prefetcher on and off.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, pf := range []bool{true, false} {
		pf := pf
		name := "prefetch-on"
		if !pf {
			name = "prefetch-off"
		}
		b.Run(name, func(b *testing.B) {
			var q harness.OpCost
			for i := 0; i < b.N; i++ {
				q = runGroupQueries(!pf)
			}
			reportOp(b, q)
		})
	}
}

func runGroupQueries(disablePrefetch bool) harness.OpCost {
	s := benchScale()
	cfg := harness.BuildConfig{Kind: harness.Group, TotalCells: s.RandomNumCells, KeyBytes: 8, Seed: 1}
	mem := memsim.New(memsim.Config{
		Size:            harness.RegionBytes(cfg),
		Seed:            1,
		DisablePrefetch: disablePrefetch,
	})
	tab := harness.Build(mem, cfg)
	tr := trace.NewRandomNum(1)
	var keys []layout.Key
	for tab.LoadFactor() < 0.75 {
		it := tr.Next()
		if tab.Insert(it.Key, it.Value) != nil {
			break
		}
		keys = append(keys, it.Key)
	}
	before := mem.Counters()
	n := s.Ops
	for i := 0; i < n; i++ {
		tab.Lookup(keys[(i*7919)%len(keys)])
	}
	d := mem.Counters().Sub(before)
	return harness.OpCost{
		Count:        n,
		AvgLatencyNs: d.ClockNs / float64(n),
		AvgL3Misses:  float64(d.L3Misses) / float64(n),
		AvgFlushes:   float64(d.Flushes) / float64(n),
	}
}

// BenchmarkAblationFlushLatency sweeps the paper's emulated NVM write
// penalty (default 300 ns) to show how the group-vs-logged-baseline gap
// scales with the cost of persistence.
func BenchmarkAblationFlushLatency(b *testing.B) {
	s := benchScale()
	for _, extra := range []float64{0, 150, 300, 600, 1000} {
		extra := extra
		b.Run(fmt.Sprintf("extra%dns", int(extra)), func(b *testing.B) {
			var group, linearL harness.OpCost
			for i := 0; i < b.N; i++ {
				group = runInsertsWithLatency(harness.Group, extra, s)
				linearL = runInsertsWithLatency(harness.LinearL, extra, s)
			}
			b.ReportMetric(group.AvgLatencyNs, "group-sim-ns/op")
			b.ReportMetric(linearL.AvgLatencyNs, "linearL-sim-ns/op")
			if group.AvgLatencyNs > 0 {
				b.ReportMetric(linearL.AvgLatencyNs/group.AvgLatencyNs, "speedup")
			}
		})
	}
}

func runInsertsWithLatency(kind harness.Kind, extra float64, s harness.Scale) harness.OpCost {
	cfg := harness.BuildConfig{Kind: kind, TotalCells: s.RandomNumCells, KeyBytes: 8, Seed: 1}
	lat := memsim.DefaultLatency()
	lat.NVMWriteExtra = extra
	mem := memsim.New(memsim.Config{Size: harness.RegionBytes(cfg), Seed: 1, Latency: &lat})
	tab := harness.Build(mem, cfg)
	tr := trace.NewRandomNum(1)
	for tab.LoadFactor() < 0.5 {
		it := tr.Next()
		if tab.Insert(it.Key, it.Value) != nil {
			break
		}
	}
	before := mem.Counters()
	n := s.Ops
	for i := 0; i < n; i++ {
		it := tr.Next()
		tab.Insert(it.Key, it.Value)
	}
	d := mem.Counters().Sub(before)
	return harness.OpCost{Count: n, AvgLatencyNs: d.ClockNs / float64(n)}
}

// BenchmarkAblationGroupWithWAL measures what the 8-byte-atomic design
// saves: the same group-hash insert workload with a WAL's duplicate-
// copy writes artificially added around each insert (the cost a logged
// design would pay; group hashing needs none of it).
func BenchmarkAblationGroupWithWAL(b *testing.B) {
	s := benchScale()
	for _, logged := range []bool{false, true} {
		logged := logged
		name := "atomic-commit"
		if logged {
			name = "with-wal"
		}
		b.Run(name, func(b *testing.B) {
			var cost harness.OpCost
			for i := 0; i < b.N; i++ {
				cost = runGroupInsertsMaybeLogged(logged, s)
			}
			reportOp(b, cost)
		})
	}
}

func runGroupInsertsMaybeLogged(logged bool, s harness.Scale) harness.OpCost {
	cfg := harness.BuildConfig{Kind: harness.Group, TotalCells: s.RandomNumCells, KeyBytes: 8, Seed: 1}
	mem := memsim.New(memsim.Config{Size: harness.RegionBytes(cfg), Seed: 1})
	tab := harness.Build(mem, cfg)
	var log *wal.Log
	if logged {
		log = wal.New(mem, layout.ForKeySize(8))
	}
	tr := trace.NewRandomNum(1)
	for tab.LoadFactor() < 0.5 {
		it := tr.Next()
		if tab.Insert(it.Key, it.Value) != nil {
			break
		}
	}
	before := mem.Counters()
	n := s.Ops
	for i := 0; i < n; i++ {
		it := tr.Next()
		if log != nil {
			// The duplicate-copy cost a logging design pays per
			// mutation: one cell pre-image appended and published,
			// one commit record — exactly the Linear-L protocol.
			log.LogCell(0, 0, it.Key, it.Value)
		}
		tab.Insert(it.Key, it.Value)
		if log != nil {
			log.Commit()
		}
	}
	d := mem.Counters().Sub(before)
	return harness.OpCost{
		Count:        n,
		AvgLatencyNs: d.ClockNs / float64(n),
		AvgL3Misses:  float64(d.L3Misses) / float64(n),
		AvgFlushes:   float64(d.Flushes) / float64(n),
	}
}

// BenchmarkAblationTwoChoice reproduces the §4.4 trade-off the paper
// describes but does not plot: a second hash function raises space
// utilisation while damaging the contiguity of collision probing.
func BenchmarkAblationTwoChoice(b *testing.B) {
	s := benchScale()
	for _, k := range []harness.Kind{harness.Group, harness.Group2C} {
		k := k
		b.Run(string(k), func(b *testing.B) {
			var lat harness.LatencyResult
			var util harness.SpaceUtilResult
			for i := 0; i < b.N; i++ {
				lat = harness.RunLatency(harness.LatencyConfig{
					Build:      harness.BuildConfig{Kind: k, TotalCells: s.RandomNumCells, Seed: 1},
					Trace:      trace.NewRandomNum(s.Seed),
					LoadFactor: 0.75,
					Ops:        s.Ops,
					Seed:       s.Seed,
				})
				util = harness.RunSpaceUtil(harness.BuildConfig{
					Kind: k, TotalCells: s.RandomNumCells, Seed: 1,
				}, trace.NewRandomNum(s.Seed))
			}
			b.ReportMetric(lat.Query.AvgLatencyNs, "query-sim-ns/op")
			b.ReportMetric(lat.Query.AvgL3Misses, "query-L3miss/op")
			b.ReportMetric(util.Utilization*100, "util%")
		})
	}
}

// BenchmarkWear quantifies NVM media wear per mutation for every
// consistent scheme — the endurance motivation of §2.1.
func BenchmarkWear(b *testing.B) {
	s := benchScale()
	for _, k := range harness.Fig5Schemes() {
		k := k
		b.Run(string(k), func(b *testing.B) {
			var res harness.WearResult
			for i := 0; i < b.N; i++ {
				res = harness.RunWear(harness.BuildConfig{
					Kind: k, TotalCells: s.RandomNumCells, Seed: 1,
				}, trace.NewRandomNum(s.Seed), s.Ops, s.Seed)
			}
			b.ReportMetric(res.MediaWritesPerOp, "media-writes/op")
			b.ReportMetric(float64(res.MaxPerWord), "hottest-word")
		})
	}
}

// BenchmarkAblationBatchInsert compares single inserts against the
// batched variant that amortises the hot count-word persist.
func BenchmarkAblationBatchInsert(b *testing.B) {
	s := benchScale()
	for _, batch := range []bool{false, true} {
		batch := batch
		name := "single"
		if batch {
			name = "batched"
		}
		b.Run(name, func(b *testing.B) {
			var perOp float64
			for i := 0; i < b.N; i++ {
				perOp = runBatchInsertTrial(batch, s)
			}
			b.ReportMetric(perOp, "sim-ns/op")
		})
	}
}

func runBatchInsertTrial(batch bool, s harness.Scale) float64 {
	cfg := harness.BuildConfig{Kind: harness.Group, TotalCells: s.RandomNumCells, KeyBytes: 8, Seed: 1}
	mem := memsim.New(memsim.Config{Size: harness.RegionBytes(cfg), Seed: 1})
	tab := harness.Build(mem, cfg).(*core.Table)
	n := s.Ops * 5
	items := make([]core.Item, n)
	tr := trace.NewRandomNum(1)
	for i := range items {
		it := tr.Next()
		items[i] = core.Item{Key: it.Key, Value: it.Value}
	}
	t0 := mem.Clock()
	if batch {
		tab.InsertBatch(items)
	} else {
		for _, it := range items {
			tab.Insert(it.Key, it.Value)
		}
	}
	return (mem.Clock() - t0) / float64(n)
}

// BenchmarkAblationGroupIndex measures the volatile occupancy index's
// effect on absent-key lookups (the worst case of Algorithm 2's
// full-group scan).
func BenchmarkAblationGroupIndex(b *testing.B) {
	for _, indexed := range []bool{false, true} {
		indexed := indexed
		name := "full-scan"
		if indexed {
			name = "indexed"
		}
		b.Run(name, func(b *testing.B) {
			var perOp float64
			for i := 0; i < b.N; i++ {
				perOp = runAbsentLookups(indexed)
			}
			b.ReportMetric(perOp, "sim-ns/op")
		})
	}
}

func runAbsentLookups(indexed bool) float64 {
	s := benchScale()
	cfg := harness.BuildConfig{Kind: harness.Group, TotalCells: s.RandomNumCells, KeyBytes: 8, Seed: 1}
	mem := memsim.New(memsim.Config{Size: harness.RegionBytes(cfg), Seed: 1})
	tab := harness.Build(mem, cfg).(*core.Table)
	tr := trace.NewRandomNum(1)
	for tab.LoadFactor() < 0.5 {
		it := tr.Next()
		if tab.Insert(it.Key, it.Value) != nil {
			break
		}
	}
	if indexed {
		tab.EnableGroupIndex()
	}
	n := s.Ops
	t0 := mem.Clock()
	for i := 0; i < n; i++ {
		tab.Lookup(layout.Key{Lo: 1<<40 + uint64(i)})
	}
	return (mem.Clock() - t0) / float64(n)
}

// BenchmarkNativeStore measures real Go-level throughput of the public
// Store API on process memory (no simulation): the cost of the
// algorithms themselves.
func BenchmarkNativeStore(b *testing.B) {
	b.Run("put", func(b *testing.B) {
		st, err := grouphash.New(grouphash.Options{Capacity: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Put(grouphash.Key{Lo: uint64(i) + 1}, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("get", func(b *testing.B) {
		st, _ := grouphash.New(grouphash.Options{Capacity: 1 << 20})
		const n = 1 << 19
		for i := uint64(1); i <= n; i++ {
			st.Put(grouphash.Key{Lo: i}, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Get(grouphash.Key{Lo: uint64(i)%n + 1})
		}
	})
	b.Run("delete-insert", func(b *testing.B) {
		st, _ := grouphash.New(grouphash.Options{Capacity: 1 << 20})
		const n = 1 << 19
		for i := uint64(1); i <= n; i++ {
			st.Put(grouphash.Key{Lo: i}, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := grouphash.Key{Lo: uint64(i)%n + 1}
			st.Delete(k)
			st.Insert(k, 1)
		}
	})
}

// BenchmarkConcurrentStore measures parallel throughput scaling of the
// striped-lock wrapper (an extension beyond the single-threaded paper).
func BenchmarkConcurrentStore(b *testing.B) {
	st, err := grouphash.New(grouphash.Options{Capacity: 1 << 20, Concurrent: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(1); i <= 1<<19; i++ {
		st.Put(grouphash.Key{Lo: i}, i)
	}
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			k := grouphash.Key{Lo: i%(1<<19) + 1}
			if i%10 == 0 {
				st.Put(k, i)
			} else {
				st.Get(k)
			}
		}
	})
}
