package grouphash

import (
	"grouphash/internal/memsim"
	"grouphash/internal/stats"
)

// ExpansionProgress reports an in-flight online expansion's migration
// progress as (stripes migrated, stripes total); (0, 0) when no
// expansion is running or the store is sequential.
func (s *Store) ExpansionProgress() (migrated, total int) {
	if s.conc == nil {
		return 0, 0
	}
	return s.conc.ExpandProgress()
}

// StripesMigrated returns the cumulative number of stripes drained by
// online expansions over the store's lifetime (0 on sequential stores).
func (s *Store) StripesMigrated() uint64 {
	if s.conc == nil {
		return 0
	}
	return s.conc.StripesMigrated()
}

// ExpansionStallNanos returns the total wall time writers have spent
// blocked waiting for an online expansion to make room — the
// store-side cost of stop-less growth (0 on sequential stores).
func (s *Store) ExpansionStallNanos() uint64 {
	if s.conc == nil {
		return 0
	}
	return s.conc.WriterStallNanos()
}

// RegisterMetrics exports the store's occupancy and online-expansion
// state into r under the given metric-name prefix (e.g. "gh" →
// gh_store_items). Safe on sequential and concurrent stores alike; the
// expansion series simply stay zero when expansion never runs.
func (s *Store) RegisterMetrics(r *stats.Registry, prefix string) {
	p := prefix + "_store_"
	r.RegisterGauge(p+"items", "", "Items currently stored.",
		func() float64 { return float64(s.Len()) })
	r.RegisterGauge(p+"capacity_cells", "", "Total cell count of the table.",
		func() float64 { return float64(s.Capacity()) })
	r.RegisterGauge(p+"load_factor", "", "Items / cells.",
		func() float64 { return s.LoadFactor() })
	r.RegisterGauge(p+"expanding", "", "1 while a stop-less online expansion is in flight.",
		func() float64 {
			if s.Expanding() {
				return 1
			}
			return 0
		})
	r.RegisterCounter(p+"expansions_total", "", "Completed online expansions.", s.Expansions)
	r.RegisterGauge(p+"expansion_stripes_migrated", "", "Stripes drained by the in-flight expansion (0 when idle).",
		func() float64 { m, _ := s.ExpansionProgress(); return float64(m) })
	r.RegisterGauge(p+"expansion_stripes", "", "Stripes the in-flight expansion must drain (0 when idle).",
		func() float64 { _, t := s.ExpansionProgress(); return float64(t) })
	r.RegisterCounter(p+"expansion_stripes_migrated_total", "", "Stripes drained by online expansions, cumulative.",
		s.StripesMigrated)
	r.RegisterFloatCounter(p+"expansion_writer_stall_seconds_total", "",
		"Total wall time writers spent blocked waiting for expansion room.",
		func() float64 { return float64(s.ExpansionStallNanos()) * 1e-9 })
	r.RegisterCounter(p+"fingerprint_hits_total", "",
		"Cells dereferenced because their fingerprint tag matched the probe key.",
		func() uint64 { h, _ := s.FingerprintStats(); return h })
	r.RegisterCounter(p+"fingerprint_skips_total", "",
		"Cells the fingerprint filter screened out without a persistent-memory read.",
		func() uint64 { _, sk := s.FingerprintStats(); return sk })
}

// RegisterSubstrateMetrics exports the memory backend's cost counters
// into r under the given metric-name prefix: the simulated machine
// contributes NVM write-traffic, per-level cache and flush/fence
// counters (the paper's measurement vocabulary), the native backend its
// allocation watermark. Backends the façade does not recognise register
// nothing.
//
// The simulated counters are read without synchronisation — the
// simulator is single-threaded by design — so only scrape registries
// holding simulated substrate metrics while the simulation is idle.
func (s *Store) RegisterSubstrateMetrics(r *stats.Registry, prefix string) {
	switch m := s.mem.(type) {
	case *memsim.Memory:
		m.Region().RegisterMetrics(r, prefix)
		m.Hierarchy().RegisterMetrics(r, prefix)
		p := prefix + "_sim_"
		r.RegisterCounter(p+"flushes_total", "", "clflush instructions executed.",
			func() uint64 { return m.Counters().Flushes })
		r.RegisterCounter(p+"fences_total", "", "mfence instructions executed.",
			func() uint64 { return m.Counters().Fences })
		r.RegisterGauge(p+"clock_seconds", "", "Simulated machine time.",
			func() float64 { return m.Counters().ClockNs * 1e-9 })
		r.RegisterGauge(prefix+"_mem_allocated_bytes", "", "Allocator watermark of the backing memory.",
			func() float64 { return float64(m.Allocated()) })
	case imager:
		r.RegisterGauge(prefix+"_mem_allocated_bytes", "", "Allocator watermark of the backing memory.",
			func() float64 { return float64(m.Allocated()) })
	}
}
