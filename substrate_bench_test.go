// Substrate microbenchmarks: the BenchmarkSubstrate* family isolates the
// cost of each simulation layer — dirty-word tracking in the NVM region,
// the cache model's hit path, and the full memsim stack — plus a fixed
// group-table trace, so substrate regressions show up as wall-clock
// deltas here rather than as mysterious slowdowns in the figure harness.
//
// BenchmarkSubstrateTrackerPaged vs BenchmarkSubstrateTrackerMap replays
// one identical store/persist/evict/scan sequence against the production
// paged tracker and against a faithful reimplementation of the seed's
// map[uint64]uint64 tracker (kept here as a test-only baseline after its
// removal from internal/nvm). The paged structure's advantage is the
// point of the rewrite; measured numbers are recorded in README.md.
package grouphash_test

import (
	"encoding/binary"
	"testing"

	"grouphash/internal/cache"
	"grouphash/internal/memsim"
	"grouphash/internal/nvm"
)

// trackerMem abstracts the two dirty-tracking implementations under one
// replayable op surface.
type trackerMem interface {
	store8(addr, val uint64)
	persistRange(addr, n uint64) int
	evict(addr, n uint64) int
	dirtyInRange(addr, n uint64) int
}

// pagedTracker adapts the production nvm.Region.
type pagedTracker struct{ r *nvm.Region }

func (p pagedTracker) store8(addr, val uint64)         { p.r.Store8(addr, val) }
func (p pagedTracker) persistRange(addr, n uint64) int { return p.r.PersistRange(addr, n) }
func (p pagedTracker) evict(addr, n uint64) int        { return p.r.Evict(addr, n) }
func (p pagedTracker) dirtyInRange(addr, n uint64) int { return p.r.DirtyInRange(addr, n) }

// mapTracker reimplements the seed's dirty-word tracking: one map entry
// per dirty word holding the persisted (old) value, with per-word map
// probes on every store, persist, eviction and scan.
type mapTracker struct {
	cur []byte
	old map[uint64]uint64
}

func newMapTracker(size uint64) *mapTracker {
	return &mapTracker{cur: make([]byte, size), old: make(map[uint64]uint64)}
}

func (m *mapTracker) store8(addr, val uint64) {
	if _, dirty := m.old[addr]; !dirty {
		m.old[addr] = binary.LittleEndian.Uint64(m.cur[addr : addr+8])
	}
	binary.LittleEndian.PutUint64(m.cur[addr:addr+8], val)
}

func (m *mapTracker) persistRange(addr, n uint64) int {
	first := addr &^ 7
	last := (addr + n - 1) &^ 7
	persisted := 0
	for w := first; w <= last; w += 8 {
		if _, dirty := m.old[w]; dirty {
			delete(m.old, w)
			persisted++
		}
	}
	return persisted
}

func (m *mapTracker) evict(addr, n uint64) int { return m.persistRange(addr, n) }

func (m *mapTracker) dirtyInRange(addr, n uint64) int {
	first := addr &^ 7
	last := (addr + n - 1) &^ 7
	dirty := 0
	for w := first; w <= last; w += 8 {
		if _, ok := m.old[w]; ok {
			dirty++
		}
	}
	return dirty
}

// replayTrackerOps drives one deterministic protocol-shaped sequence:
// a few word stores into a cacheline followed by a line persist (the
// table's commit pattern), a scatter of un-persisted stores, periodic
// line evictions, and dirty-range scans — the exact op mix the memsim
// layer issues. Returns a checksum so the compiler cannot elide work
// and so both trackers can be cross-checked for identical semantics.
func replayTrackerOps(t trackerMem, size uint64, rounds int) int {
	sum := 0
	x := uint64(88172645463325252)
	next := func() uint64 { // xorshift64: cheap, deterministic
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := 0; i < rounds; i++ {
		// Commit pattern: 3 stores in one line, then persist the line.
		line := (next() % size) &^ 63
		t.store8(line, next())
		t.store8(line+8, next())
		t.store8(line+48, next())
		sum += t.persistRange(line, 64)
		// Background dirt: un-persisted scattered store.
		t.store8((next()%size)&^7, next())
		// Every few rounds the cache model evicts a line; the crash and
		// verification tooling periodically scans dirty state over page-
		// and segment-sized spans (DirtyInRange), where the per-word map
		// probe of the old tracker was most painful.
		if i%8 == 0 {
			sum += t.evict((next()%size)&^63, 64)
		}
		if i%16 == 0 {
			base := (next() % (size - 4096)) &^ 7
			sum += t.dirtyInRange(base, 4096)
		}
		if i%256 == 0 {
			base := (next() % (size - 65536)) &^ 7
			sum += t.dirtyInRange(base, 65536)
		}
	}
	return sum
}

const trackerBenchSize = 1 << 24 // 16 MiB region, paper-order table size

// BenchmarkSubstrateTrackerPaged measures the production paged
// dirty-word tracker on the protocol-shaped op mix.
func BenchmarkSubstrateTrackerPaged(b *testing.B) {
	r := nvm.NewRegion(trackerBenchSize, 1)
	tr := pagedTracker{r}
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += replayTrackerOps(tr, trackerBenchSize, 4096)
	}
	if sum < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkSubstrateTrackerMap measures the seed's map-based tracker
// (test-only baseline) on the identical op mix.
func BenchmarkSubstrateTrackerMap(b *testing.B) {
	m := newMapTracker(trackerBenchSize)
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += replayTrackerOps(m, trackerBenchSize, 4096)
	}
	if sum < 0 {
		b.Fatal("impossible")
	}
}

// TestTrackerSemanticsMatch cross-checks the test-only map baseline
// against the production region on the benchmark op mix: identical
// persisted/evicted/dirty counts at every step (the checksums fold all
// of them in), so the benchmark pair really measures the same work.
func TestTrackerSemanticsMatch(t *testing.T) {
	r := nvm.NewRegion(1<<20, 1)
	m := newMapTracker(1 << 20)
	a := replayTrackerOps(pagedTracker{r}, 1<<20, 20000)
	b := replayTrackerOps(m, 1<<20, 20000)
	if a != b {
		t.Fatalf("paged tracker checksum %d != map tracker checksum %d", a, b)
	}
	if r.DirtyWords() != len(m.old) {
		t.Fatalf("dirty words: paged %d, map %d", r.DirtyWords(), len(m.old))
	}
}

// BenchmarkSubstrateRegionStorePersist is the tightest protocol loop on
// the raw region: store a word, persist its line — the per-item inner
// cost of every scheme in the repo.
func BenchmarkSubstrateRegionStorePersist(b *testing.B) {
	r := nvm.NewRegion(1<<24, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * 2654435761) % (1 << 24) &^ 7
		r.Store8(addr, uint64(i))
		r.PersistRange(addr&^63, 64)
	}
}

// BenchmarkSubstrateCacheHit measures the hierarchy's hit path on a hot
// working set that fits in L1 — dominated by the MRU fast path.
func BenchmarkSubstrateCacheHit(b *testing.B) {
	h := cache.NewHierarchy(cache.SmallGeometry())
	for a := uint64(0); a < 2048; a += 64 {
		h.Access(a, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i%2048)&^7, i%4 == 0)
	}
}

// BenchmarkSubstrateMemsimWrite measures the full simulated-machine
// stack (cache model + latency model + region) on a write+persist loop.
func BenchmarkSubstrateMemsimWrite(b *testing.B) {
	mem := memsim.New(memsim.Config{Size: 1 << 24, Seed: 1, Geoms: cache.SmallGeometry()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * 2654435761) % mem.Size() &^ 7
		mem.Write8(addr, uint64(i))
		mem.Persist(addr, 8)
	}
}

// BenchmarkSubstrateTraceReplay runs the fixed insert/lookup/delete
// group-table trace from substrate_test.go end to end — the integration
// number: simulated-machine wall-clock per simulated operation. The
// sim-ns/op metric reports how much simulated time one trace costs, a
// sanity anchor that the fast paths did not change modelled latency.
func BenchmarkSubstrateTraceReplay(b *testing.B) {
	var last memsim.Counters
	for i := 0; i < b.N; i++ {
		last = replaySubstrateTrace(1<<14, 3000)
	}
	b.ReportMetric(last.ClockNs/float64(last.Accesses), "sim-ns/access")
}
