package grouphash

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestStoreBasics(t *testing.T) {
	st, err := New(Options{Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(Key{Lo: 7}, 70); err != nil {
		t.Fatal(err)
	}
	if v, ok := st.Get(Key{Lo: 7}); !ok || v != 70 {
		t.Fatalf("Get = (%d, %v)", v, ok)
	}
	// Put is an upsert.
	if err := st.Put(Key{Lo: 7}, 71); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get(Key{Lo: 7}); v != 71 {
		t.Fatalf("value after upsert = %d", v)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
	if !st.Delete(Key{Lo: 7}) || st.Delete(Key{Lo: 7}) {
		t.Fatal("delete semantics")
	}
	if _, ok := st.Get(Key{Lo: 7}); ok {
		t.Fatal("deleted key visible")
	}
}

func TestStoreRejectsZeroKey(t *testing.T) {
	st, _ := New(Options{Capacity: 1 << 10})
	if err := st.Put(Key{Lo: 0}, 1); !errors.Is(err, ErrInvalidKey) {
		t.Fatalf("Put(zero key) = %v, want ErrInvalidKey", err)
	}
	st16, _ := New(Options{Capacity: 1 << 10, KeyBytes: 16})
	if err := st16.Put(Key{Lo: 0, Hi: 0}, 1); err != nil {
		t.Fatalf("16-byte layout must accept the zero key: %v", err)
	}
}

func TestStoreAutoExpands(t *testing.T) {
	st, err := New(Options{Capacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	before := st.Capacity()
	for i := uint64(1); i <= 2000; i++ {
		if err := st.Put(Key{Lo: i}, i); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if st.Capacity() <= before {
		t.Fatal("store did not expand")
	}
	for i := uint64(1); i <= 2000; i++ {
		if v, ok := st.Get(Key{Lo: i}); !ok || v != i {
			t.Fatalf("key %d after expansion: (%d, %v)", i, v, ok)
		}
	}
	if msgs := st.CheckConsistency(); len(msgs) != 0 {
		t.Fatalf("inconsistencies: %v", msgs)
	}
}

func TestStoreDisableExpand(t *testing.T) {
	st, _ := New(Options{Capacity: 64, DisableExpand: true})
	var sawFull bool
	for i := uint64(1); i <= 10000; i++ {
		if err := st.Put(Key{Lo: i}, i); err != nil {
			if !errors.Is(err, ErrTableFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("fixed-size store never filled")
	}
}

func TestStoreInsertAllowsDuplicates(t *testing.T) {
	st, _ := New(Options{Capacity: 1 << 10})
	st.Insert(Key{Lo: 5}, 1)
	st.Insert(Key{Lo: 5}, 2)
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (paper semantics)", st.Len())
	}
}

func TestStoreRange(t *testing.T) {
	st, _ := New(Options{Capacity: 1 << 10})
	for i := uint64(1); i <= 50; i++ {
		st.Put(Key{Lo: i}, i*2)
	}
	sum := uint64(0)
	st.Range(func(k Key, v uint64) bool {
		sum += v
		return true
	})
	if sum != 50*51 {
		t.Fatalf("sum over Range = %d", sum)
	}
}

func TestStoreString(t *testing.T) {
	st, _ := New(Options{Capacity: 1 << 10})
	if !strings.Contains(st.String(), "grouphash.Store") {
		t.Fatalf("String = %q", st.String())
	}
}

func TestConcurrentStore(t *testing.T) {
	st, err := New(Options{Capacity: 1 << 14, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w*1000 + 1)
			for i := uint64(0); i < 1000; i++ {
				if err := st.Put(Key{Lo: base + i}, base+i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if st.Len() != 8000 {
		t.Fatalf("Len = %d", st.Len())
	}
	if v, ok := st.Get(Key{Lo: 4321}); !ok || v != 4321 {
		t.Fatalf("Get = (%d, %v)", v, ok)
	}
}

func TestSimulatedCrashRecovery(t *testing.T) {
	sim, err := NewSimulated(Options{Capacity: 1 << 12, DisableExpand: true}, SimOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 1000; i++ {
		if err := sim.Insert(Key{Lo: i}, i); err != nil {
			t.Fatal(err)
		}
	}
	out := sim.Crash(0.5)
	if out.DirtyWords < 0 {
		t.Fatal("impossible")
	}
	if _, err := sim.Recover(); err != nil {
		t.Fatal(err)
	}
	if msgs := sim.CheckConsistency(); len(msgs) != 0 {
		t.Fatalf("inconsistencies after crash+recover: %v", msgs)
	}
	// Every insert returned before the crash, so every item committed.
	for i := uint64(1); i <= 1000; i++ {
		if v, ok := sim.Get(Key{Lo: i}); !ok || v != i {
			t.Fatalf("committed key %d lost: (%d, %v)", i, v, ok)
		}
	}
}

func TestSimulatedCountersAdvance(t *testing.T) {
	sim, err := NewSimulated(Options{Capacity: 1 << 12}, SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c0 := sim.Counters()
	sim.Put(Key{Lo: 9}, 9)
	d := sim.Counters().Sub(c0)
	if d.Flushes == 0 || d.Fences == 0 || d.ClockNs <= 0 {
		t.Fatalf("insert produced no persistence traffic: %+v", d)
	}
	if sim.ClockNs() <= 0 {
		t.Fatal("clock did not advance")
	}
	if sim.L3Geometry() != 15<<20 {
		t.Fatalf("L3 = %d, want the paper's 15 MB", sim.L3Geometry())
	}
}

func TestSimulatedWriteLatencyKnob(t *testing.T) {
	run := func(extra float64) float64 {
		sim, err := NewSimulated(Options{Capacity: 1 << 10}, SimOptions{Seed: 1, WriteLatencyNs: extra})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= 500; i++ {
			sim.Insert(Key{Lo: i}, i)
		}
		return sim.ClockNs()
	}
	slow := run(1000)
	fast := run(1)
	if slow <= fast {
		t.Fatalf("write latency knob has no effect: %v <= %v", slow, fast)
	}
}

func TestOpenAfterCleanShutdown(t *testing.T) {
	sim, err := NewSimulated(Options{Capacity: 1 << 10, DisableExpand: true}, SimOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		sim.Put(Key{Lo: i}, i*3)
	}
	hdr := sim.Header()
	sim.CleanShutdown()

	st, err := Open(sim.mem, hdr, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 100 {
		t.Fatalf("reopened Len = %d", st.Len())
	}
	for i := uint64(1); i <= 100; i++ {
		if v, ok := st.Get(Key{Lo: i}); !ok || v != i*3 {
			t.Fatalf("reopened key %d = (%d, %v)", i, v, ok)
		}
	}
}

// Property: a Store agrees with a map oracle under random upserts,
// lookups and deletes.
func TestQuickStoreMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		st, err := New(Options{Capacity: 512})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		oracle := make(map[uint64]uint64)
		for op := 0; op < 3000; op++ {
			key := uint64(rng.Intn(600)) + 1
			switch rng.Intn(4) {
			case 0, 1:
				v := rng.Uint64()
				if st.Put(Key{Lo: key}, v) == nil {
					oracle[key] = v
				}
			case 2:
				v, ok := st.Get(Key{Lo: key})
				ov, ook := oracle[key]
				if ok != ook || (ok && v != ov) {
					return false
				}
			case 3:
				if st.Delete(Key{Lo: key}) != (func() bool { _, ok := oracle[key]; return ok })() {
					return false
				}
				delete(oracle, key)
			}
		}
		return st.Len() == uint64(len(oracle))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreInsertBatch(t *testing.T) {
	st, err := New(Options{Capacity: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, 100)
	for i := range items {
		items[i] = Item{Key: Key{Lo: uint64(i) + 1}, Value: uint64(i)}
	}
	n, err := st.InsertBatch(items)
	if err != nil || n != 100 {
		t.Fatalf("batch: %d, %v", n, err)
	}
	if st.Len() != 100 {
		t.Fatalf("Len = %d", st.Len())
	}
	// Concurrent stores batch through the stripe-grouped ApplyBatch now
	// (one lock acquisition + one count persist per stripe-run).
	cst, _ := New(Options{Capacity: 1 << 10, Concurrent: true})
	n, err = cst.InsertBatch(items)
	if err != nil || n != 100 {
		t.Fatalf("concurrent batch: %d, %v", n, err)
	}
	if cst.Len() != 100 {
		t.Fatalf("concurrent Len = %d", cst.Len())
	}
	for i := range items {
		if v, ok := cst.Get(items[i].Key); !ok || v != items[i].Value {
			t.Fatalf("concurrent Get(%d) = %d, %v", i, v, ok)
		}
	}
}

func TestSimScheduledCrashAndImage(t *testing.T) {
	dir := t.TempDir()
	img := dir + "/store.img"

	sim, err := NewSimulated(Options{Capacity: 1 << 10, DisableExpand: true}, SimOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 200; i++ {
		sim.Insert(Key{Lo: i}, i)
	}
	// A scheduled crash that cuts the next insert mid-flight.
	sim.ScheduleCrash(sim.Counters().Accesses+2, 0.5)
	sim.Insert(Key{Lo: 9999}, 1)
	if !sim.CompleteCrash() {
		t.Fatal("crash trigger did not fire")
	}
	if _, err := sim.Recover(); err != nil {
		t.Fatal(err)
	}
	if msgs := sim.CheckConsistency(); len(msgs) != 0 {
		t.Fatalf("inconsistent: %v", msgs)
	}

	// Save and reload via the PMFS-image path.
	if err := sim.SaveImage(img); err != nil {
		t.Fatal(err)
	}
	re, err := LoadImage(img, SimOptions{Seed: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != sim.Len() {
		t.Fatalf("reloaded Len = %d, want %d", re.Len(), sim.Len())
	}
	for i := uint64(1); i <= 200; i++ {
		if v, ok := re.Get(Key{Lo: i}); !ok || v != i {
			t.Fatalf("reloaded key %d = (%d, %v)", i, v, ok)
		}
	}
	if _, err := LoadImage(dir+"/missing.img", SimOptions{}, false); err == nil {
		t.Fatal("loading a missing image must fail")
	}
	if re.LoadFactor() <= 0 {
		t.Fatal("load factor")
	}
}

func TestStoreInsertDeleteConcurrentPaths(t *testing.T) {
	st, _ := New(Options{Capacity: 1 << 12, Concurrent: true})
	if err := st.Insert(Key{Lo: 3}, 1); err != nil {
		t.Fatal(err)
	}
	if !st.Delete(Key{Lo: 3}) {
		t.Fatal("concurrent delete path")
	}
	if st.Delete(Key{Lo: 3}) {
		t.Fatal("double delete")
	}
}

func TestStoreGroupIndexOption(t *testing.T) {
	st, err := New(Options{Capacity: 1 << 12, GroupIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 2000; i++ {
		if err := st.Put(Key{Lo: i}, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 2000; i++ {
		if v, ok := st.Get(Key{Lo: i}); !ok || v != i {
			t.Fatalf("key %d = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := st.Get(Key{Lo: 1 << 30}); ok {
		t.Fatal("phantom")
	}
	for i := uint64(1); i <= 2000; i += 2 {
		if !st.Delete(Key{Lo: i}) {
			t.Fatalf("delete %d", i)
		}
	}
	if msgs := st.CheckConsistency(); len(msgs) != 0 {
		t.Fatalf("inconsistent: %v", msgs)
	}
}

// TestSnapshotRoundtrip covers the façade snapshot hooks end to end:
// a concurrent native store is snapshotted while writer goroutines are
// live, and the image reopens with every pre-snapshot write present.
func TestSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/store.pmfs"
	st, err := New(Options{Capacity: 1 << 12, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Concurrent() {
		t.Fatal("Concurrent() = false on a concurrent store")
	}
	for i := uint64(1); i <= 1000; i++ {
		if err := st.Put(Key{Lo: i}, i*3); err != nil {
			t.Fatal(err)
		}
	}
	// Background churn on a disjoint key range while the snapshot runs:
	// the quiesce hook must still cut a consistent image.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(5000); ; i++ {
			select {
			case <-stop:
				return
			default:
				st.Put(Key{Lo: i%1000 + 5000}, i)
			}
		}
	}()
	if err := st.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done

	re, err := LoadSnapshot(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 1000; i++ {
		if v, ok := re.Get(Key{Lo: i}); !ok || v != i*3 {
			t.Fatalf("key %d = (%d, %v) after reload", i, v, ok)
		}
	}
	if bad := re.CheckConsistency(); len(bad) != 0 {
		t.Fatalf("reloaded store inconsistent: %v", bad)
	}
	// The reloaded store must be fully writable.
	if err := re.Put(Key{Lo: 2_000_000}, 1); err != nil {
		t.Fatal(err)
	}
}
