// Quickstart: the smallest useful grouphash program.
//
//	go run ./examples/quickstart
//
// Creates a store, puts/gets/deletes a few items, prints statistics.
package main

import (
	"fmt"
	"log"

	"grouphash"
)

func main() {
	// A store sized for ~1M items. Keys are 8-byte (non-zero) words;
	// values are single words. The table uses the paper's defaults:
	// group size 256, two-level group-sharing layout.
	store, err := grouphash.New(grouphash.Options{Capacity: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// Put is an upsert; Insert (not shown) has the paper's
	// duplicate-allowing Algorithm-1 semantics.
	for i := uint64(1); i <= 100_000; i++ {
		if err := store.Put(grouphash.Key{Lo: i}, i*i); err != nil {
			log.Fatal(err)
		}
	}

	v, ok := store.Get(grouphash.Key{Lo: 777})
	fmt.Printf("key 777 -> %d (found: %v)\n", v, ok)

	store.Put(grouphash.Key{Lo: 777}, 42) // overwrite in place
	v, _ = store.Get(grouphash.Key{Lo: 777})
	fmt.Printf("key 777 -> %d after upsert\n", v)

	store.Delete(grouphash.Key{Lo: 777})
	_, ok = store.Get(grouphash.Key{Lo: 777})
	fmt.Printf("key 777 present after delete: %v\n", ok)

	fmt.Println(store)
	fmt.Printf("load factor: %.3f\n", store.LoadFactor())

	// The consistency invariants can be checked at any time.
	if msgs := store.CheckConsistency(); len(msgs) == 0 {
		fmt.Println("table is consistent")
	} else {
		fmt.Println("violations:", msgs)
	}
}
