// backup: the full persistence lifecycle of a group-hash store —
// build, crash, recover, save to an image file, reopen "in the next
// process", and verify — exercising the PMFS-analogue image layer the
// paper's setup gets from PMFS itself.
//
//	go run ./examples/backup
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"grouphash"
)

func main() {
	dir, err := os.MkdirTemp("", "grouphash-backup-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	image := filepath.Join(dir, "index.img")

	// Process 1: build an index, survive a mid-operation power failure,
	// and save a clean image.
	sim, err := grouphash.NewSimulated(
		grouphash.Options{Capacity: 1 << 14, DisableExpand: true},
		grouphash.SimOptions{Seed: 21},
	)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(1); i <= 8000; i++ {
		if err := sim.Insert(grouphash.Key{Lo: i}, i*7); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("process 1: built %s\n", sim.Store)

	sim.ScheduleCrash(sim.Counters().Accesses+4, 0.5)
	sim.Insert(grouphash.Key{Lo: 999_999}, 1)
	if !sim.CompleteCrash() {
		log.Fatal("crash trigger did not fire")
	}
	rep, err := sim.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process 1: crashed mid-insert, recovered (scrubbed %d cells, count corrected %v)\n",
		rep.CellsCleared, rep.CountCorrected)

	if err := sim.SaveImage(image); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(image)
	fmt.Printf("process 1: saved %s (%d KB)\n", filepath.Base(image), info.Size()>>10)

	// Process 2: a brand-new machine loads the image and verifies it.
	re, err := grouphash.LoadImage(image, grouphash.SimOptions{Seed: 99}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process 2: reopened %s\n", re.Store)
	if msgs := re.CheckConsistency(); len(msgs) != 0 {
		log.Fatalf("process 2: inconsistent image: %v", msgs)
	}
	missing := 0
	for i := uint64(1); i <= 8000; i++ {
		if v, ok := re.Get(grouphash.Key{Lo: i}); !ok || v != i*7 {
			missing++
		}
	}
	fmt.Printf("process 2: verified 8000 items, %d missing\n", missing)
	if missing != 0 {
		log.Fatal("durability violated")
	}

	// Process 2 keeps working where process 1 left off.
	for i := uint64(8001); i <= 9000; i++ {
		if err := re.Insert(grouphash.Key{Lo: i}, i*7); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("process 2: appended 1000 more items -> %s\n", re.Store)
	fmt.Println("lifecycle complete: build -> crash -> recover -> save -> reopen -> verify -> extend")
}
