// dedup: a content-addressed chunk index over 16-byte fingerprints —
// the workload behind the paper's Fingerprint trace (MD5 digests of
// files from a production backup server).
//
//	go run ./examples/dedup
//
// A deduplicating backup system keeps a fingerprint → chunk-location
// index; every incoming chunk is looked up (hit = duplicate, skip the
// store) and inserted on miss. This example synthesises a chunk stream
// with realistic duplication (backups re-see most data every cycle),
// indexes it with the 16-byte-key group-hash store, and reports
// deduplication statistics.
package main

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"grouphash"
)

const (
	uniqueChunks = 200_000
	streamLen    = 1_000_000
	dupProb      = 0.80 // backup streams are mostly re-seen data
)

// chunkFingerprint derives the MD5-based key of chunk id, exactly how
// the paper's trace derives keys from file contents.
func chunkFingerprint(id uint64) grouphash.Key {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], id)
	sum := md5.Sum(buf[:])
	return grouphash.Key{
		Lo: binary.LittleEndian.Uint64(sum[0:8]),
		Hi: binary.LittleEndian.Uint64(sum[8:16]),
	}
}

func main() {
	index, err := grouphash.New(grouphash.Options{
		Capacity: uniqueChunks,
		KeyBytes: 16, // fingerprints need the 32-byte cell layout
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	var stored, duplicates uint64
	var bytesSeen, bytesStored uint64
	nextNew := uint64(0)

	for i := 0; i < streamLen; i++ {
		// Choose the next chunk: mostly re-seen content, sometimes new.
		var id uint64
		if nextNew == 0 || (rng.Float64() < dupProb && nextNew > 0) {
			if nextNew == 0 {
				id = 0
				nextNew = 1
			} else {
				id = uint64(rng.Int63n(int64(nextNew)))
			}
		} else {
			id = nextNew
			nextNew++
			if nextNew > uniqueChunks {
				nextNew = uniqueChunks
			}
		}
		chunkSize := uint64(4096 + rng.Intn(4096)) // 4-8 KB chunks
		bytesSeen += chunkSize

		fp := chunkFingerprint(id)
		if loc, ok := index.Get(fp); ok {
			duplicates++
			_ = loc // a real system would add a reference to loc
			continue
		}
		// New chunk: store it and index its location.
		location := stored // pretend chunks append to a log
		if err := index.Put(fp, location); err != nil {
			log.Fatal(err)
		}
		stored++
		bytesStored += chunkSize
	}

	fmt.Printf("chunk stream:      %d chunks, %.2f GB logical\n", streamLen, float64(bytesSeen)/1e9)
	fmt.Printf("unique stored:     %d chunks, %.2f GB physical\n", stored, float64(bytesStored)/1e9)
	fmt.Printf("duplicates found:  %d (%.1f%%)\n", duplicates, float64(duplicates)/float64(streamLen)*100)
	fmt.Printf("dedup ratio:       %.2fx\n", float64(bytesSeen)/float64(bytesStored))
	fmt.Printf("index:             %s\n", index)
	if msgs := index.CheckConsistency(); len(msgs) != 0 {
		log.Fatalf("index inconsistent: %v", msgs)
	}
	fmt.Println("index is consistent")
}
