// kvstore: a memcached-style small-item cache workload on the
// concurrent group-hash store.
//
//	go run ./examples/kvstore
//
// The paper motivates group hashing with key-value stores "dominated by
// small items whose sizes are smaller than a cacheline size" (§2.3,
// citing the Facebook memcached study and MemC3). This example drives
// the concurrent store with a skewed (Zipf) read-mostly workload from
// several goroutines — the canonical cache traffic shape — and reports
// throughput and hit rates.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"grouphash"
)

const (
	keySpace  = 400_000
	readRatio = 0.9 // GET fraction, as in the memcached ETC pool
	workers   = 8
	opsPerWkr = 300_000
	zipfS     = 1.07 // mild skew: a few hot keys, long tail
	zipfV     = 8
)

func main() {
	store, err := grouphash.New(grouphash.Options{
		Capacity:   keySpace,
		Concurrent: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Warm the cache with half the key space.
	for i := uint64(1); i <= keySpace/2; i++ {
		if err := store.Put(grouphash.Key{Lo: i}, i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("warmed: %s\n", store)

	var gets, hits, puts, deletes atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			zipf := rand.NewZipf(rng, zipfS, zipfV, keySpace-1)
			for i := 0; i < opsPerWkr; i++ {
				key := zipf.Uint64() + 1
				k := grouphash.Key{Lo: key}
				switch r := rng.Float64(); {
				case r < readRatio:
					gets.Add(1)
					if _, ok := store.Get(k); ok {
						hits.Add(1)
					}
				case r < readRatio+0.08:
					puts.Add(1)
					if err := store.Put(k, key*2); err != nil {
						log.Printf("put: %v", err)
						return
					}
				default:
					deletes.Add(1)
					store.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := gets.Load() + puts.Load() + deletes.Load()
	fmt.Printf("ran %d ops in %v across %d workers\n", total, elapsed.Round(time.Millisecond), workers)
	fmt.Printf("throughput: %.2f Mops/s\n", float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("GET hit rate: %.1f%% (%d/%d)\n",
		float64(hits.Load())/float64(gets.Load())*100, hits.Load(), gets.Load())
	fmt.Printf("final state: %s\n", store)
	if msgs := store.CheckConsistency(); len(msgs) != 0 {
		log.Fatalf("consistency violations: %v", msgs)
	}
	fmt.Println("table is consistent")
}
