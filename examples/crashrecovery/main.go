// crashrecovery: a walk-through of the paper's Figure 1 — the three
// inconsistency cases a naive NVM hash table exposes — and how group
// hashing's 8-byte failure-atomic commit protocol survives each one.
//
//	go run ./examples/crashrecovery
//
// The example runs on the simulated NVM machine, which models exactly
// the hardware behaviours behind the three cases: write-back caching
// (case 1: a later store persists while an earlier one is lost),
// store reordering (case 2: the count reaches NVM before the item) and
// torn multi-word writes (case 3: a partially persisted value).
package main

import (
	"fmt"
	"log"

	"grouphash"
)

func main() {
	fmt.Println("=== Group hashing vs the three Figure-1 inconsistency cases ===")
	fmt.Println()

	// Case study 1 + 2: crash between an item's commit and the count
	// update, with arbitrary store reordering. We insert a batch, pull
	// the plug with every un-persisted word randomly surviving or not,
	// and show recovery restores full consistency.
	sim, err := grouphash.NewSimulated(
		grouphash.Options{Capacity: 1 << 14, DisableExpand: true},
		grouphash.SimOptions{Seed: 7},
	)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(1); i <= 5000; i++ {
		if err := sim.Insert(grouphash.Key{Lo: i}, i*3); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted 5000 items; simulated time %.2f ms\n", sim.ClockNs()/1e6)

	// Now pull the plug IN THE MIDDLE of the next insert: the failure
	// lands between the protocol's steps, and every then-unpersisted
	// word independently survives or not (modelling cache write-back
	// and store reordering at once).
	sim.ScheduleCrash(sim.Counters().Accesses+3, 0.5)
	if err := sim.Insert(grouphash.Key{Lo: 999_999}, 1); err != nil {
		log.Fatal(err)
	}
	if !sim.CompleteCrash() {
		log.Fatal("crash trigger never fired")
	}
	fmt.Println("POWER FAILURE mid-insert of key 999999")

	rep, err := sim.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: scanned %d cells, scrubbed %d torn payloads, count corrected: %v\n",
		rep.CellsScanned, rep.CellsCleared, rep.CountCorrected)
	if _, ok := sim.Get(grouphash.Key{Lo: 999_999}); ok {
		fmt.Println("the interrupted insert committed before the cut (atomic: fully visible)")
	} else {
		fmt.Println("the interrupted insert was discarded whole (atomic: fully invisible)")
	}

	if msgs := sim.CheckConsistency(); len(msgs) != 0 {
		log.Fatalf("STILL INCONSISTENT: %v", msgs)
	}
	lost := 0
	for i := uint64(1); i <= 5000; i++ {
		if v, ok := sim.Get(grouphash.Key{Lo: i}); !ok || v != i*3 {
			lost++
		}
	}
	fmt.Printf("committed items lost: %d / 5000 (every insert had returned, so all were durable)\n", lost)
	if lost != 0 {
		log.Fatal("durability violated")
	}
	fmt.Println()

	// Case study 3: torn write. Insert items whose multi-word cell
	// payload could tear, crash with maximally adversarial rollback
	// (nothing un-persisted survives), and verify no half-written item
	// is ever visible. The 16-byte-key layout has a 3-word payload, the
	// widest tearing surface in the repository.
	sim2, err := grouphash.NewSimulated(
		grouphash.Options{Capacity: 1 << 12, KeyBytes: 16, DisableExpand: true},
		grouphash.SimOptions{Seed: 9},
	)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(1); i <= 2000; i++ {
		if err := sim2.Insert(grouphash.Key{Lo: i, Hi: ^i}, i); err != nil {
			log.Fatal(err)
		}
	}
	sim2.Crash(0.0)
	if _, err := sim2.Recover(); err != nil {
		log.Fatal(err)
	}
	torn := 0
	for i := uint64(1); i <= 2000; i++ {
		if v, ok := sim2.Get(grouphash.Key{Lo: i, Hi: ^i}); !ok || v != i {
			torn++
		}
	}
	fmt.Printf("16-byte-key store after adversarial crash: %d torn/lost items of 2000\n", torn)
	if msgs := sim2.CheckConsistency(); len(msgs) != 0 {
		log.Fatalf("inconsistent: %v", msgs)
	}
	fmt.Println()

	// Recovery speed: the Table-3 story in miniature. Recovery is a
	// single sequential scan, a tiny fraction of the load time.
	loadNs := sim.ClockNs()
	before := sim.ClockNs()
	if _, err := sim.Recover(); err != nil {
		log.Fatal(err)
	}
	recNs := sim.ClockNs() - before
	fmt.Printf("recovery scan: %.3f ms simulated (%.2f%% of the %.2f ms load)\n",
		recNs/1e6, recNs/loadNs*100, loadNs/1e6)
	fmt.Println()
	fmt.Println("all three failure cases handled with zero logging — the 8-byte")
	fmt.Println("atomic commit word is the entire consistency mechanism")
}
